// Package store is AFEX's persistent exploration store: an append-only
// JSONL journal of every executed scenario plus periodic compact
// snapshots, kept in a state directory that outlives any single process.
// It is what turns a one-shot exploration into a resumable, incrementally
// smarter search service:
//
//   - crash-safe resume: the journal is the source of truth for executed
//     records; the snapshot carries the state that would otherwise need
//     O(session) replay (explorer fitness state, redundancy clusters,
//     similarity memory). A SIGKILLed session restarts exactly where it
//     stopped, re-executing at most the entries that had not reached the
//     journal yet.
//   - cross-run novelty: scenario keys loaded from prior journals feed
//     the engine's novelty filter, so two runs against the same target
//     never re-execute identical scenarios — every test of a new run
//     spends budget on an unexplored point.
//   - reproduction: `afex replay` re-executes journaled failures
//     directly from their recorded injection plans.
//
// The store never blocks the execution hot path: the engine's
// JournalRecord/SnapshotSession callbacks (made under the session lock,
// which is what keeps the journal in fold order) only push onto an
// unbounded in-memory queue; one background writer goroutine does all
// JSON encoding and file IO, flushing whenever it drains the queue.
//
// Layout of a state directory:
//
//	meta.json     target name, space signature, run count, run stamps,
//	              journal format, compaction watermark
//	journal.jsonl one Entry per executed scenario, append-only (the
//	              default "jsonl" format — human-greppable, and byte
//	              deterministic for a deterministic session)
//	journal.afexj the "binary" format: crc-framed length-prefixed
//	              entries with periodic index blocks (see binary.go)
//	journal.idx   side index into journal.afexj's index blocks, so a
//	              resume seeks to the tail instead of scanning the run
//	archive.afexj compacted journal prefix already covered by a
//	              snapshot (binary format only; see Compact)
//	snapshot.json latest core.SessionState, replaced atomically
//
// The journal format is chosen per directory at creation (Options.Format
// via OpenOptions) and recorded in meta.json; an existing directory
// always keeps its format, and both formats resume and replay
// identically — "binary" just does it without the per-record JSON
// encode and without the O(run) resume scan.
//
// Timestamps are deliberately "from config": journal entries carry only
// their run index (keeping journal bytes deterministic for a
// deterministic session); the wall-clock stamp of each run — caller
// provided, defaulting to the current time — lives once in meta.json.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"afex/internal/backend"
	"afex/internal/core"
	"afex/internal/explore"
	"afex/internal/faultspace"
	"afex/internal/inject"
	"afex/internal/prog"
)

const (
	metaName     = "meta.json"
	journalName  = "journal.jsonl"
	snapshotName = "snapshot.json"
	lockName     = "lock"

	// Version guards the on-disk format.
	Version = 1

	// FormatJSONL and FormatBinary are the journal formats a state
	// directory can use. JSONL is the default: one JSON object per line,
	// byte-deterministic for deterministic sessions and greppable.
	// Binary is the hot-path format: length-prefixed crc-framed entries
	// with periodic index blocks, appended without JSON encoding and
	// resumed in O(snapshot + tail).
	FormatJSONL  = "jsonl"
	FormatBinary = "binary"
)

// Options tunes OpenOptions. The zero value opens with the directory's
// existing format (JSONL for new directories) and full-journal resume.
type Options struct {
	// Format selects the journal format for a NEW directory: FormatJSONL
	// (the default) or FormatBinary. An existing directory keeps the
	// format it was created with; asking for a different one is an
	// error, never a silent rewrite.
	Format string
	// TailResume lets Recover materialize only the journal tail past the
	// latest snapshot (binary format only): counters and seen keys for
	// the covered prefix come from the snapshot's aggregates, so a
	// 100k-entry session resumes in O(snapshot + tail) instead of
	// decoding every entry. Recover falls back to the full-journal path
	// whenever the snapshot cannot self-describe its prefix.
	TailResume bool
	// IndexEvery overrides the entry interval between index blocks in
	// binary journals (0 = DefaultIndexEvery). Smaller intervals mean
	// finer tail seeks at slightly more journal bytes.
	IndexEvery int
	// Peer/Peers record a multi-coordinator shard assignment: this
	// directory journals peer index Peer of a space split across Peers
	// coordinators (faultspace.Union.Shard). Recorded in meta.json on
	// first open and validated on reopen, so each peer always resumes
	// its own region — opening a peer directory with a different
	// assignment (or a non-peer directory as a peer) is an error. Zero
	// values mean "not a peer shard".
	Peer  int
	Peers int
}

// Meta describes a state directory.
type Meta struct {
	Version int `json:"version"`
	// Target is the system under test all runs in this directory share.
	Target string `json:"target"`
	// SpaceSignature is the faultspace.Signature every run must match —
	// a journal written against one space must never seed exploration of
	// another.
	SpaceSignature string `json:"spaceSignature"`
	// Runs counts sessions that appended to this directory.
	Runs int `json:"runs"`
	// Stamps records one caller-provided timestamp per run.
	Stamps []string `json:"stamps,omitempty"`
	// Journal is the directory's journal format (FormatJSONL or
	// FormatBinary). Absent in directories written before formats
	// existed — those are JSONL by construction.
	Journal string `json:"journal,omitempty"`
	// CompactedSeq is the compaction watermark of a binary directory:
	// entries [0, CompactedSeq) live in archive.afexj, the live journal
	// holds the rest. Always <= the snapshot's Seq.
	CompactedSeq int `json:"compactedSeq,omitempty"`
	// Peer/Peers record the directory's multi-coordinator shard
	// assignment (Options.Peer/Peers): region Peer of Peers. Absent for
	// single-coordinator directories.
	Peer  int `json:"peer,omitempty"`
	Peers int `json:"peers,omitempty"`
}

// Entry is one journaled scenario execution: the candidate's coordinates
// and provenance, the observed outcome, and the session's scoring of it.
type Entry struct {
	// Seq is the record's session-wide execution index (== core.Record.ID).
	Seq int `json:"seq"`
	// Run indexes Meta.Stamps: which run executed this entry.
	Run int `json:"run"`
	// Sub and Fault are the point's coordinates; Shard the owning shard
	// of a sharded session (-1 otherwise).
	Sub   int   `json:"sub"`
	Fault []int `json:"fault"`
	Shard int   `json:"shard"`
	// MutatedAxis and ParentKey are the candidate's mutation provenance
	// (replayed into the explorer when resuming past a snapshot).
	MutatedAxis int    `json:"mutatedAxis"`
	ParentKey   string `json:"parentKey,omitempty"`

	Scenario string         `json:"scenario,omitempty"`
	TestID   int            `json:"testID"`
	Plan     []inject.Fault `json:"plan,omitempty"`
	Skipped  bool           `json:"skipped,omitempty"`

	// Backend is the execution backend that ran the scenario; absent
	// means "model", which keeps model journals byte-identical to the
	// pre-backend format (and deterministic for deterministic
	// sessions). ExitStatus and DurationNS are the process backend's
	// exit disposition and wall clock, likewise absent for model runs.
	Backend    string `json:"backend,omitempty"`
	ExitStatus string `json:"exitStatus,omitempty"`
	DurationNS int64  `json:"durationNS,omitempty"`

	Injected bool     `json:"injected,omitempty"`
	Failed   bool     `json:"failed,omitempty"`
	Crashed  bool     `json:"crashed,omitempty"`
	Hung     bool     `json:"hung,omitempty"`
	CrashID  string   `json:"crashID,omitempty"`
	Stack    []string `json:"stack,omitempty"`
	Blocks   []int    `json:"blocks,omitempty"`

	NewBlocks int     `json:"newBlocks,omitempty"`
	Impact    float64 `json:"impact"`
	Fitness   float64 `json:"fitness"`
	Relevance float64 `json:"relevance,omitempty"`
	Cluster   int     `json:"cluster"`
}

// Key returns the entry's scenario key (the novelty/deduplication
// identity, identical to faultspace.Point.Key).
func (e *Entry) Key() string {
	return faultspace.Point{Sub: e.Sub, Fault: e.Fault}.Key()
}

// Record rebuilds the core record the entry was journaled from. The
// outcome's block set and the injection plan round-trip; per-trial state
// like Precision does not (it is measured, not explored).
func (e *Entry) Record() core.Record {
	out := prog.Outcome{
		Failed:         e.Failed,
		Crashed:        e.Crashed,
		Hung:           e.Hung,
		CrashID:        e.CrashID,
		Injected:       e.Injected,
		InjectionStack: e.Stack,
	}
	if len(e.Blocks) > 0 {
		out.Blocks = make(map[int]struct{}, len(e.Blocks))
		for _, b := range e.Blocks {
			out.Blocks[b] = struct{}{}
		}
	}
	backendName := e.Backend
	if backendName == "" {
		// Absent means model — both in journals written by this version
		// (which omit the default) and in pre-backend journals (whose
		// sessions could only run the model).
		backendName = backend.Model
	}
	return core.Record{
		ID:         e.Seq,
		Point:      faultspace.Point{Sub: e.Sub, Fault: append(faultspace.Fault(nil), e.Fault...)},
		Scenario:   e.Scenario,
		TestID:     e.TestID,
		Plan:       inject.Plan{Faults: append([]inject.Fault(nil), e.Plan...)},
		Skipped:    e.Skipped,
		Backend:    backendName,
		ExitStatus: e.ExitStatus,
		Duration:   time.Duration(e.DurationNS),
		Outcome:    out,
		NewBlocks:  e.NewBlocks,
		Impact:     e.Impact,
		Fitness:    e.Fitness,
		Cluster:    e.Cluster,
		Relevance:  e.Relevance,
		Shard:      e.Shard,
	}
}

// Feedback rebuilds the explorer feedback for resume replay.
func (e *Entry) Feedback() explore.Feedback {
	return explore.Feedback{
		C: explore.Candidate{
			Point:       faultspace.Point{Sub: e.Sub, Fault: append(faultspace.Fault(nil), e.Fault...)},
			MutatedAxis: e.MutatedAxis,
			ParentKey:   e.ParentKey,
		},
		Impact:  e.Impact,
		Fitness: e.Fitness,
	}
}

func entryFrom(run int, c explore.Candidate, rec core.Record) *Entry {
	e := &Entry{
		Seq:         rec.ID,
		Run:         run,
		Sub:         rec.Point.Sub,
		Fault:       append([]int(nil), rec.Point.Fault...),
		Shard:       rec.Shard,
		MutatedAxis: c.MutatedAxis,
		ParentKey:   c.ParentKey,
		Scenario:    rec.Scenario,
		TestID:      rec.TestID,
		Plan:        append([]inject.Fault(nil), rec.Plan.Faults...),
		Skipped:     rec.Skipped,
		ExitStatus:  rec.ExitStatus,
		DurationNS:  int64(rec.Duration),
		Injected:    rec.Outcome.Injected,
		Failed:      rec.Outcome.Failed,
		Crashed:     rec.Outcome.Crashed,
		Hung:        rec.Outcome.Hung,
		CrashID:     rec.Outcome.CrashID,
		Stack:       append([]string(nil), rec.Outcome.InjectionStack...),
		NewBlocks:   rec.NewBlocks,
		Impact:      rec.Impact,
		Fitness:     rec.Fitness,
		Relevance:   rec.Relevance,
		Cluster:     rec.Cluster,
	}
	// "model" is the implicit default: omitting it keeps model journal
	// bytes identical to the pre-backend format; Entry.Record restores
	// it on read.
	if rec.Backend != backend.Model {
		e.Backend = rec.Backend
	}
	if len(rec.Outcome.Blocks) > 0 {
		e.Blocks = sortedBlocks(rec.Outcome.Blocks)
	}
	return e
}

func sortedBlocks(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// msg is one queued writer operation. Records are queued raw — the
// Entry (including the sorted block list) is built on the writer
// goroutine, so the fold path really does pay enqueue cost only.
type msg struct {
	rec  *core.Record
	cand explore.Candidate
	run  int
	snap *core.SessionState
}

// Store is an open state directory. It implements core.Store.
type Store struct {
	dir        string
	meta       Meta
	run        int
	format     string
	tailResume bool
	indexEvery int

	journal *os.File
	bw      *bufio.Writer
	lock    *os.File

	// JSONL writer state: one persistent encoder over bw, so the hot
	// append path reuses the encoder's internal buffer instead of
	// allocating a fresh Marshal result per record.
	enc *json.Encoder

	// Binary writer state, touched only by the writer goroutine: the
	// reusable entry/frame encode buffers, the live segment's append
	// offset, the offset of the last index frame (-1 before the first),
	// and the open side-index file.
	benc         segEnc
	frameBuf     []byte
	idxBuf       []byte
	liveOff      int64
	lastIndexOff int64
	idx          *os.File

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []msg
	queued    int64
	processed int64
	closed    bool
	err       error

	wg sync.WaitGroup
}

// Open opens (creating if needed) a state directory with default
// Options and starts the background writer. See OpenOptions.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions opens (creating if needed) a state directory and starts
// the background writer. The directory is locked against concurrent
// writers (flock on unix; a dead process's lock is released by the
// kernel). Callers must Close the store to flush the journal tail and
// release the lock.
func OpenOptions(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, meta: Meta{Version: Version}, tailResume: opts.TailResume}
	s.cond = sync.NewCond(&s.mu)
	if err := s.lockDir(); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, metaName))
	haveMeta := false
	switch {
	case err == nil:
		haveMeta = true
		if err := json.Unmarshal(raw, &s.meta); err != nil {
			s.unlockDir()
			return nil, fmt.Errorf("store: corrupt %s: %w", metaName, err)
		}
		if s.meta.Version != Version {
			s.unlockDir()
			return nil, fmt.Errorf("store: %s has format version %d, this build reads %d", dir, s.meta.Version, Version)
		}
	case os.IsNotExist(err):
	default:
		s.unlockDir()
		return nil, fmt.Errorf("store: %w", err)
	}
	// Peer shard assignment: recorded on first open, immutable after —
	// a peer coordinator must only ever resume its own region of the
	// sharded space (the space-signature check would catch a cross-
	// region resume too, but this names the actual mistake).
	if haveMeta {
		if s.meta.Peers != opts.Peers || s.meta.Peer != opts.Peer {
			s.unlockDir()
			return nil, fmt.Errorf("store: %s journals peer shard %d of %d, not %d of %d",
				dir, s.meta.Peer, s.meta.Peers, opts.Peer, opts.Peers)
		}
	} else {
		s.meta.Peer, s.meta.Peers = opts.Peer, opts.Peers
	}
	s.format, err = resolveFormat(dir, s.meta, opts.Format, haveMeta)
	if err != nil {
		s.unlockDir()
		return nil, err
	}
	s.meta.Journal = s.format
	s.indexEvery = opts.IndexEvery
	if s.indexEvery <= 0 {
		s.indexEvery = DefaultIndexEvery
	}
	// A SIGKILL mid-append can leave a torn final entry. Readers drop
	// it, but appending after it would fuse the torn bytes with the next
	// entry into permanent mid-file corruption — truncate it away before
	// opening for append (we hold the directory lock, so no other writer
	// can race the repair).
	if s.format == FormatBinary {
		err = s.openBinaryJournal()
	} else {
		err = s.openJSONLJournal()
	}
	if err != nil {
		s.unlockDir()
		return nil, err
	}
	s.bw = bufio.NewWriterSize(s.journal, 1<<16)
	if s.format == FormatJSONL {
		s.enc = json.NewEncoder(s.bw)
	}
	s.wg.Add(1)
	go s.writerLoop()
	return s, nil
}

func (s *Store) openJSONLJournal() error {
	if err := repairJournalTail(filepath.Join(s.dir, journalName)); err != nil {
		return fmt.Errorf("store: repair journal: %w", err)
	}
	var err error
	s.journal, err = os.OpenFile(filepath.Join(s.dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (s *Store) openBinaryJournal() error {
	live := filepath.Join(s.dir, binJournalName)
	idxPath := filepath.Join(s.dir, idxName)
	size, lastIndexOff, err := repairSegment(live, idxPath)
	if err != nil {
		return fmt.Errorf("store: repair journal: %w", err)
	}
	s.journal, err = os.OpenFile(live, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if size == 0 {
		if _, err := s.journal.Write([]byte(segMagic)); err != nil {
			s.journal.Close()
			return fmt.Errorf("store: %w", err)
		}
		size = int64(len(segMagic))
	}
	s.liveOff, s.lastIndexOff = size, lastIndexOff
	s.idx, err = os.OpenFile(idxPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.journal.Close()
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// resolveFormat decides a directory's journal format: what meta.json
// records (with pre-format directories meaning JSONL), else what
// journal files are present, else what the caller asked for, else
// JSONL. An explicit request that contradicts the directory's existing
// format is an error.
func resolveFormat(dir string, meta Meta, want string, haveMeta bool) (string, error) {
	switch want {
	case "", FormatJSONL, FormatBinary:
	default:
		return "", fmt.Errorf("store: unknown journal format %q (valid: %s, %s)", want, FormatJSONL, FormatBinary)
	}
	have := ""
	switch {
	case haveMeta && meta.Journal != "":
		if meta.Journal != FormatJSONL && meta.Journal != FormatBinary {
			return "", fmt.Errorf("store: %s records unknown journal format %q", dir, meta.Journal)
		}
		have = meta.Journal
	case haveMeta:
		have = FormatJSONL // pre-format directories only ever wrote JSONL
	default:
		_, errBin := os.Stat(filepath.Join(dir, binJournalName))
		_, errJSONL := os.Stat(filepath.Join(dir, journalName))
		switch {
		case errBin == nil && errJSONL == nil:
			return "", fmt.Errorf("store: %s holds both %s and %s and no meta.json to disambiguate", dir, binJournalName, journalName)
		case errBin == nil:
			have = FormatBinary
		case errJSONL == nil:
			have = FormatJSONL
		}
	}
	if have != "" {
		if want != "" && want != have {
			return "", fmt.Errorf("store: %s already journals in %q format; existing directories keep their format (use a new --state-dir for %q)",
				dir, have, want)
		}
		return have, nil
	}
	if want == "" {
		return FormatJSONL, nil
	}
	return want, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Meta returns a copy of the directory metadata.
func (s *Store) Meta() Meta {
	m := s.meta
	m.Stamps = append([]string(nil), s.meta.Stamps...)
	return m
}

// Begin registers a new run against the directory, verifying that the
// target and fault space match what previous runs journaled (resuming a
// journal against a different space would corrupt the session). stamp is
// the run's timestamp-from-config; empty selects the current wall clock.
func (s *Store) Begin(target, spaceSig, stamp string) error {
	if s.meta.Runs > 0 {
		if s.meta.SpaceSignature != spaceSig {
			return fmt.Errorf("store: %s was journaled for a different fault space\n  have %s\n  want %s",
				s.dir, spaceSig, s.meta.SpaceSignature)
		}
		if s.meta.Target != target {
			return fmt.Errorf("store: %s was journaled for target %q, not %q", s.dir, s.meta.Target, target)
		}
	} else {
		s.meta.Target = target
		s.meta.SpaceSignature = spaceSig
	}
	if stamp == "" {
		stamp = time.Now().UTC().Format(time.RFC3339)
	}
	s.run = s.meta.Runs
	s.meta.Runs++
	s.meta.Stamps = append(s.meta.Stamps, stamp)
	return s.writeAtomic(metaName, mustJSON(&s.meta))
}

// JournalRecord implements core.Store: enqueue only, never IO.
func (s *Store) JournalRecord(c explore.Candidate, rec core.Record) {
	s.enqueue(msg{rec: &rec, cand: c, run: s.run})
}

// SnapshotSession implements core.Store: enqueue only, never IO.
func (s *Store) SnapshotSession(st *core.SessionState) {
	s.enqueue(msg{snap: st})
}

func (s *Store) enqueue(m msg) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, m)
	s.queued++
	s.mu.Unlock()
	s.cond.Signal()
}

// Sync blocks until everything enqueued before the call has been written
// and flushed, returning the first writer error if any.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.queued
	for s.processed < target && s.err == nil {
		s.cond.Wait()
	}
	return s.err
}

// Close drains the queue, flushes and closes the journal, and releases
// the directory lock. The store is unusable afterwards; further
// JournalRecord calls are dropped.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		defer s.mu.Unlock()
		return s.err
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
	s.setErr(s.bw.Flush())
	s.setErr(s.journal.Close())
	if s.idx != nil {
		s.setErr(s.idx.Close())
	}
	s.unlockDir()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Store) writerLoop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		batch := s.queue
		s.queue = nil
		s.mu.Unlock()
		if len(batch) == 0 {
			s.cond.Broadcast()
			return // closed and drained
		}
		for i := range batch {
			s.process(&batch[i])
		}
		// One flush per drained batch: syscalls amortize under load,
		// the journal tail is promptly durable when idle.
		s.setErr(s.bw.Flush())
		s.mu.Lock()
		s.processed += int64(len(batch))
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

func (s *Store) process(m *msg) {
	switch {
	case m.rec != nil:
		e := entryFrom(m.run, m.cand, *m.rec)
		if s.format == FormatBinary {
			s.appendBinary(e)
			return
		}
		// The persistent encoder produces exactly Marshal's bytes plus
		// the trailing newline, but reuses its encode buffer across
		// records instead of allocating a fresh one per append.
		s.setErr(s.enc.Encode(e))
	case m.snap != nil:
		// The journal must never lag a snapshot that references it.
		if err := s.bw.Flush(); err != nil {
			s.setErr(err)
			return
		}
		raw, err := json.MarshalIndent(m.snap, "", " ")
		if err != nil {
			s.setErr(err)
			return
		}
		s.setErr(s.writeAtomic(snapshotName, raw))
	}
}

// appendBinary writes one entry frame to the live segment, plus an
// index frame and a side-index record after every indexEvery-th entry.
// Runs on the writer goroutine only.
func (s *Store) appendBinary(e *Entry) {
	s.benc.encodeEntry(e)
	s.frameBuf = appendFrame(s.frameBuf[:0], frameEntry, s.benc.bytes())
	if _, err := s.bw.Write(s.frameBuf); err != nil {
		s.setErr(err)
		return
	}
	s.liveOff += int64(len(s.frameBuf))
	if (e.Seq+1)%s.indexEvery != 0 {
		return
	}
	off := s.liveOff
	s.frameBuf = appendFrame(s.frameBuf[:0], frameIndex, indexPayload(e.Seq+1, s.lastIndexOff))
	if _, err := s.bw.Write(s.frameBuf); err != nil {
		s.setErr(err)
		return
	}
	s.liveOff += int64(len(s.frameBuf))
	s.lastIndexOff = off
	// The side index must never point past the journal's durable bytes:
	// flush the segment before recording the offset. readIdx drops
	// records past the file size, so a crash between the two writes
	// costs one seek hint, never correctness.
	if err := s.bw.Flush(); err != nil {
		s.setErr(err)
		return
	}
	s.idxBuf = appendIdxRec(s.idxBuf[:0], e.Seq+1, off)
	if _, err := s.idx.Write(s.idxBuf); err != nil {
		s.setErr(err)
	}
}

func (s *Store) setErr(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// repairJournalTail truncates a journal to the end of its last
// newline-terminated entry, discarding the torn tail a crash mid-append
// leaves behind. A missing journal is fine.
func repairJournalTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if size == 0 {
		return nil
	}
	// Scan backward for the last newline; the torn tail is everything
	// after it (at most one buffered write, but scan arbitrarily far).
	buf := make([]byte, 64<<10)
	off := size
	for off > 0 {
		n := int64(len(buf))
		if n > off {
			n = off
		}
		off -= n
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			end := off + int64(i) + 1
			if end == size {
				return nil // no torn tail
			}
			return f.Truncate(end)
		}
	}
	return f.Truncate(0) // a single torn line and nothing else
}

// writeAtomic replaces dir/name via a temp file + rename, so readers
// never observe a partially written file.
func (s *Store) writeAtomic(name string, data []byte) error {
	return writeAtomicFile(s.dir, name, data)
}

func mustJSON(v any) []byte {
	raw, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		panic(err) // Meta marshalling cannot fail
	}
	return raw
}

// ReadJournal loads the entries of a journal file (or of the journal
// inside a state directory, either format). A truncated final entry —
// the signature of a crash mid-append — is dropped silently; JSONL
// corruption anywhere else is an error. Duplicate scenario keys keep
// the first occurrence.
func ReadJournal(path string) ([]Entry, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		if _, err := os.Stat(filepath.Join(path, binJournalName)); err == nil {
			return readBinaryDir(path)
		}
		path = filepath.Join(path, journalName)
	}
	if sniffBinary(path) {
		entries, err := readSegment(path)
		if err != nil {
			return nil, err
		}
		return dedupEntries(entries), nil
	}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lines := bytes.Split(raw, []byte{'\n'})
	entries := make([]Entry, 0, len(lines))
	seen := make(map[string]bool, len(lines))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			if i >= len(lines)-2 {
				break // torn tail write from a crash; the entry never happened
			}
			return nil, fmt.Errorf("store: corrupt journal %s at line %d: %w", path, i+1, err)
		}
		if key := e.Key(); !seen[key] {
			seen[key] = true
			entries = append(entries, e)
		}
	}
	return entries, nil
}

// sniffBinary reports whether the file at path starts with the binary
// segment magic.
func sniffBinary(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [len(segMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == segMagic
}

// readBinaryDir loads a binary directory's full journal: the compacted
// archive (when one exists) followed by the live segment. The keep-first
// dedup makes an interrupted compaction harmless — entries present in
// both segments read once, from the archive.
func readBinaryDir(dir string) ([]Entry, error) {
	arch, err := readSegment(filepath.Join(dir, archiveName))
	if err != nil {
		return nil, err
	}
	live, err := readSegment(filepath.Join(dir, binJournalName))
	if err != nil {
		return nil, err
	}
	return dedupEntries(append(arch, live...)), nil
}

// dedupEntries keeps the first occurrence of each scenario key — the
// same rule the JSONL reader applies line by line.
func dedupEntries(entries []Entry) []Entry {
	out := entries[:0]
	seen := make(map[string]bool, len(entries))
	for i := range entries {
		if key := entries[i].Key(); !seen[key] {
			seen[key] = true
			out = append(out, entries[i])
		}
	}
	return out
}

// LoadEntries reads the store's journal.
func (s *Store) LoadEntries() ([]Entry, error) {
	if s.format == FormatBinary {
		return readBinaryDir(s.dir)
	}
	return ReadJournal(filepath.Join(s.dir, journalName))
}

// LoadSnapshot reads the latest session snapshot; (nil, nil) when none
// exists. A snapshot that fails to decode is treated as absent — resume
// then rebuilds everything from the journal alone.
func (s *Store) LoadSnapshot() (*core.SessionState, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var st core.SessionState
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, nil // unreadable snapshot: fall back to the journal
	}
	return &st, nil
}

// Recover rebuilds a core.Restore from the directory's journal and
// snapshot: records and explorer-tail feedback from the journal, cluster
// and search state from the snapshot when one is usable. It returns nil
// when the directory holds no prior state.
func (s *Store) Recover() (*core.Restore, error) {
	snap, err := s.LoadSnapshot()
	if err != nil {
		return nil, err
	}
	if s.tailResume {
		// Binary directories with a self-describing snapshot resume in
		// O(snapshot + tail); any validation failure falls through to
		// the full-journal path below.
		if r := s.recoverTail(snap); r != nil {
			return r, nil
		}
	}
	entries, err := s.LoadEntries()
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 && snap == nil {
		return nil, nil
	}
	// The journal is the source of truth. A snapshot that claims more
	// records than the journal holds (possible only if journal bytes
	// were lost after a snapshot flush, e.g. manual truncation), or that
	// is missing its cluster sets (hand-edited or partially decoded),
	// cannot be trusted; rebuild from the journal alone.
	contiguous := true
	for i := range entries {
		if entries[i].Seq != i {
			contiguous = false
			entries[i].Seq = i
		}
	}
	if snap != nil && (snap.Seq > len(entries) || !contiguous ||
		snap.AllStacks == nil || snap.FailClusters == nil || snap.CrashClusters == nil) {
		snap = nil
	}
	r := &core.Restore{State: snap}
	r.Records = make([]core.Record, len(entries))
	for i := range entries {
		r.Records[i] = entries[i].Record()
	}
	// Prior wall clock is known only as of the last snapshot; runtime
	// between it and a crash is not recoverable (the journal carries no
	// per-entry clock by design), so cumulative Elapsed under-reports by
	// at most one snapshot interval per crash.
	tailFrom := 0
	if snap != nil {
		tailFrom = snap.Seq
		r.Elapsed = snap.Elapsed
	}
	if tailFrom < len(entries) {
		r.Tail = make([]explore.Feedback, 0, len(entries)-tailFrom)
		for i := tailFrom; i < len(entries); i++ {
			r.Tail = append(r.Tail, entries[i].Feedback())
		}
	}
	return r, nil
}

// recoverTail builds a tail-only Restore: the snapshot self-describes
// journal entries [0, Seq) via its aggregates, so only the tail past it
// is decoded — seeked to through the segment's index blocks. Returns
// nil whenever any precondition or validation fails; Recover then takes
// the full-journal path, which handles every degenerate case.
func (s *Store) recoverTail(snap *core.SessionState) *core.Restore {
	if s.format != FormatBinary || snap == nil || snap.Seq <= 0 {
		return nil
	}
	if snap.Aggregates == nil || snap.AllStacks == nil || snap.FailClusters == nil || snap.CrashClusters == nil {
		return nil
	}
	if s.meta.CompactedSeq > snap.Seq {
		return nil // archive reaches past the snapshot: inconsistent
	}
	entries, _, lastSeq, ok := readSegmentTail(
		filepath.Join(s.dir, binJournalName), filepath.Join(s.dir, idxName), snap.Seq)
	if !ok {
		return nil
	}
	// The journal (live segment, or archive when the live tail is empty)
	// must reach the snapshot: a snapshot ahead of the journal means
	// journal bytes were lost, which the full path detects and handles
	// by discarding the snapshot.
	end := lastSeq + 1
	if end < s.meta.CompactedSeq {
		end = s.meta.CompactedSeq
	}
	if end < snap.Seq {
		return nil
	}
	// The tail must be contiguous from the snapshot and introduce no
	// duplicate scenario keys (vs itself or the snapshot's seen set) —
	// otherwise the full path's renumbering/dedup semantics apply.
	seen := make(map[string]bool, len(snap.Aggregates.SeenKeys)+len(entries))
	for _, k := range snap.Aggregates.SeenKeys {
		seen[k] = true
	}
	for i := range entries {
		if entries[i].Seq != snap.Seq+i {
			return nil
		}
		if key := entries[i].Key(); seen[key] {
			return nil
		} else {
			seen[key] = true
		}
	}
	r := &core.Restore{State: snap, Base: snap.Seq, Elapsed: snap.Elapsed}
	r.Records = make([]core.Record, len(entries))
	r.Tail = make([]explore.Feedback, len(entries))
	for i := range entries {
		r.Records[i] = entries[i].Record()
		r.Tail[i] = entries[i].Feedback()
	}
	return r
}

// Attach wires the store into an exploration config: it registers the
// run (verifying target/space compatibility), loads prior scenario keys
// into the novelty filter, recovers the session for continuation —
// dropping the explorer search state unless cfg.Resume asks for it — and
// installs the store as the engine's persistence seam. It is the one
// call sites need between store.Open and core.NewEngine.
func (s *Store) Attach(cfg *core.Config) error {
	target := ""
	switch {
	case cfg.Target != nil:
		target = cfg.Target.Name
	case cfg.Command != nil:
		// Process sessions are identified by their command spec: runs
		// sharing a state directory must drive the same fixture.
		target = cfg.Command.Target()
	}
	return s.AttachNamed(cfg, target)
}

// AttachNamed is Attach with the target name supplied explicitly, for
// sessions whose engine has no local Target — distributed coordinators,
// where only the remote managers load the system under test.
func (s *Store) AttachNamed(cfg *core.Config, target string) error {
	sig := ""
	if cfg.Space != nil {
		sig = faultspace.Signature(cfg.Space)
	}
	if err := s.Begin(target, sig, cfg.StateStamp); err != nil {
		return err
	}
	r, err := s.Recover()
	if err != nil {
		return err
	}
	if r != nil {
		if !cfg.Resume {
			// Continuation without --resume: keep the cumulative records
			// and clusters, but give the search a fresh start — prior
			// points are excluded by the novelty filter, not replayed
			// into a new explorer's state.
			r.Tail = nil
			if r.State != nil {
				r.State.Explorer = nil
			}
		}
		cfg.Restore = r
		cfg.Seen = make(map[string]bool, len(r.Records))
		if r.Base > 0 && r.State != nil && r.State.Aggregates != nil {
			// Tail restore: keys for the unmaterialized prefix come from
			// the snapshot's aggregates.
			for _, k := range r.State.Aggregates.SeenKeys {
				cfg.Seen[k] = true
			}
		}
		for i := range r.Records {
			cfg.Seen[r.Records[i].Point.Key()] = true
		}
	}
	cfg.Store = s
	return nil
}
