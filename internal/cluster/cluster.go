// Package cluster implements AFEX's result-quality machinery around
// redundancy (§5, §7.4): Levenshtein edit distance between the stack
// traces captured at injection points, equivalence classes ("redundancy
// clusters") of faults whose traces are closer than a threshold, and the
// online feedback weight that steers exploration away from scenarios that
// re-trigger manifestations of the same underlying bug.
//
// Set is indexed so that Add and MaxSimilarity stay fast as sessions
// grow: an exact-match hash answers repeated stacks in O(1); stacks are
// bucketed by frame count so the edit-distance lower bound |len(a)-len(b)|
// prunes whole buckets; within a bucket a frame-signature inverted index
// (first-k frames) shortlists candidates before any DP runs; and every
// surviving comparison uses a banded Levenshtein bounded by the distance
// the current best similarity still allows. MaxSimilarity results are
// additionally memoized by exact stack key with a log position, so a
// repeated probe only rescans the stacks added since it was last
// answered. Results are identical to a naive linear scan with the full
// DP — the screening only skips comparisons whose distance provably
// cannot win.
//
// Set is safe for concurrent use: read-only similarity screening
// (PeekSimilarity, View) takes a shared lock so executor workers can
// screen in parallel, while Add/AddKeyed/ResolveSimilarity/MaxSimilarity
// serialize under the exclusive lock.
package cluster

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Levenshtein returns the edit distance between two stack traces,
// computed over whole frames (not characters): the minimum number of
// frame insertions, deletions and substitutions turning a into b. Frame
// granularity is what makes the distance meaningful for call stacks —
// a one-frame difference deep in the stack costs 1 regardless of how long
// the frame strings are.
func Levenshtein(a, b []string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// boundedLevenshtein returns the frame edit distance between a and b
// when it is at most limit, and limit+1 otherwise. It computes only the
// ±limit diagonal band of the DP matrix, so screening candidates against
// a clustering threshold costs O(len × limit) instead of O(len²).
func boundedLevenshtein(a, b []string, limit int) int {
	la, lb := len(a), len(b)
	if la > lb {
		a, b = b, a
		la, lb = lb, la
	}
	if lb-la > limit {
		return limit + 1
	}
	inf := limit + 1
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := range prev {
		if j <= limit {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo, hi := i-limit, i+limit
		if lo < 1 {
			lo = 1
		}
		if hi > lb {
			hi = lb
		}
		// Seed the out-of-band neighbours this row reads.
		if lo == 1 {
			if i <= limit {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		} else {
			cur[lo-1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			if m > inf {
				m = inf
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if hi < lb {
			cur[hi+1] = inf // next row's out-of-band read
		}
		if rowMin >= inf {
			return inf // the whole band saturated; distance exceeds limit
		}
		prev, cur = cur, prev
	}
	if prev[lb] > limit {
		return inf
	}
	return prev[lb]
}

// Similarity maps edit distance to [0,1]: 1 for identical traces, 0 for
// completely unrelated ones. This is the linear scale of §7.4 ("100%
// similarity ends up zero-ing the fitness, while 0% similarity leaves
// the fitness unmodified").
func Similarity(a, b []string) float64 {
	la, lb := len(a), len(b)
	max := la
	if lb > max {
		max = lb
	}
	if max == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(max)
}

// stackKey is a collision-free encoding of a stack (each frame is
// length-prefixed, so no frame content can alias the separator).
func stackKey(stack []string) string {
	var b strings.Builder
	for _, fr := range stack {
		b.WriteString(strconv.Itoa(len(fr)))
		b.WriteByte(':')
		b.WriteString(fr)
	}
	return b.String()
}

// StackKey exposes the exact-stack encoding so callers can compute the
// key once, off the hot path, and thread it through AddKeyed,
// PeekSimilarity and ResolveSimilarity.
func StackKey(stack []string) string { return stackKey(stack) }

// sigFrames is how many head frames each stack is posted under in the
// bucket's inverted index. A banded query with edit limit L can consult
// the index only when L+1 ≤ sigFrames (see scanBucket); 4 covers the
// high-similarity limits that matter once any decent match is known.
const sigFrames = 4

// lenBucket holds every remembered stack of one frame count, with a
// frame-signature inverted index over the first sigFrames frames.
type lenBucket struct {
	// stacks in insertion order; byHead posting lists refer into it.
	stacks [][]string
	// byHead maps a frame value appearing among a stack's first
	// sigFrames frames to the indices of the stacks containing it.
	byHead map[string][]int
}

// simMemo is a memoized MaxSimilarity answer: the best similarity over
// the first upto entries of the set's append-only stack log. A stale
// entry is still useful — only log[upto:] needs rescanning.
type simMemo struct {
	best float64
	upto int
}

// Set maintains redundancy clusters incrementally. Each added stack is
// either absorbed by the nearest existing cluster (distance to its
// representative ≤ Threshold) or founds a new one.
type Set struct {
	// Threshold is the maximum edit distance (in frames) for two traces
	// to land in the same cluster.
	Threshold int

	mu       sync.RWMutex
	clusters []Cluster

	// repByKey maps a representative's exact stack to its cluster: the
	// O(1) fast path for the overwhelmingly common case of a re-triggered
	// identical trace.
	repByKey map[string]int
	// repsByLen buckets cluster indices by representative frame count;
	// only clusters within ±Threshold frames can absorb a stack.
	repsByLen map[int][]int

	// The stack memory behind MaxSimilarity: exact multiset plus
	// length/frame-signature buckets of every stack ever added.
	allByKey map[string]int
	allByLen map[int]*lenBucket
	allN     int
	minLen   int
	maxLen   int

	// log records every remembered stack occurrence in insertion order.
	// It is append-only, which gives similarity answers a version: an
	// answer computed at log length v stays exact for the first v stacks
	// forever, so stale answers are repaired by scanning log[v:] only.
	log [][]string
	// memo caches MaxSimilarity by exact stack key. Entries are deleted
	// when their own stack is added (the exact-match hash answers 1 from
	// then on) and extended lazily via the log when stale.
	memo map[string]simMemo
}

// Cluster is one redundancy equivalence class.
type Cluster struct {
	// Representative is the first stack that founded the cluster; AFEX
	// reports one representative test per cluster for inclusion in
	// regression suites (§6).
	Representative []string
	// Members lists the ids (caller-assigned, e.g. test record indices)
	// of all faults in the class.
	Members []int
}

// NewSet returns a Set with the given frame-distance threshold. A
// threshold of 0 clusters only identical traces.
func NewSet(threshold int) *Set {
	return &Set{Threshold: threshold}
}

// init lazily allocates the indexes, so zero-value Sets keep working.
func (s *Set) init() {
	if s.repByKey == nil {
		s.repByKey = make(map[string]int)
		s.repsByLen = make(map[int][]int)
		s.allByKey = make(map[string]int)
		s.allByLen = make(map[int]*lenBucket)
		s.memo = make(map[string]simMemo)
	}
}

// Len returns the number of clusters.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.clusters)
}

// Clusters returns the clusters, largest first. The returned slice is a
// copy; members alias the internal storage.
func (s *Set) Clusters() []Cluster {
	s.mu.RLock()
	out := append([]Cluster(nil), s.clusters...)
	s.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Members) > len(out[j].Members) })
	return out
}

// remember indexes one stack into the MaxSimilarity memory and returns
// the (copied) stack actually stored.
func (s *Set) remember(key string, stack []string) []string {
	stored := append([]string(nil), stack...)
	s.allByKey[key]++
	l := len(stored)
	b := s.allByLen[l]
	if b == nil {
		b = &lenBucket{byHead: make(map[string][]int)}
		s.allByLen[l] = b
	}
	idx := len(b.stacks)
	b.stacks = append(b.stacks, stored)
	head := stored
	if len(head) > sigFrames {
		head = head[:sigFrames]
	}
	for i, f := range head {
		dup := false
		for j := 0; j < i; j++ {
			if head[j] == f {
				dup = true
				break
			}
		}
		if !dup {
			b.byHead[f] = append(b.byHead[f], idx)
		}
	}
	if s.allN == 0 || l < s.minLen {
		s.minLen = l
	}
	if l > s.maxLen {
		s.maxLen = l
	}
	s.allN++
	s.log = append(s.log, stored)
	return stored
}

// Add inserts the stack with caller id and returns the cluster index it
// joined and whether it founded a new cluster.
func (s *Set) Add(id int, stack []string) (clusterID int, isNew bool) {
	return s.AddKeyed(id, stack, stackKey(stack))
}

// AddKeyed is Add with the stack key precomputed by the caller (see
// StackKey), so the fold pipeline hashes each injection stack exactly
// once across feedback, clustering and journaling.
func (s *Set) AddKeyed(id int, stack []string, key string) (clusterID int, isNew bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	// This exact stack now answers MaxSimilarity 1 via the exact-match
	// hash; its memo entry (if any) is dead weight.
	delete(s.memo, key)
	stored := s.remember(key, stack)

	// Exact fast path: a stack identical to a representative is at
	// distance 0, the unbeatable minimum (representatives are pairwise
	// distinct, so the match is unique).
	if ci, ok := s.repByKey[key]; ok {
		s.clusters[ci].Members = append(s.clusters[ci].Members, id)
		return ci, false
	}

	// Only clusters whose representative has a frame count within
	// ±Threshold can be at distance ≤ Threshold (edit distance is at
	// least the length difference); scan exactly those, lowest cluster
	// index first so tie-breaking matches the historical linear scan.
	// Distances beyond the threshold never influence the outcome, so the
	// screen is the banded bounded distance, and — since the exact probe
	// above ruled out distance 0 — a distance-1 hit ends the scan: no
	// later cluster can tie-break it.
	la := len(stack)
	best, bestDist := -1, int(^uint(0)>>1)
	if s.Threshold > 0 {
		var cands []int
		for lb := la - s.Threshold; lb <= la+s.Threshold; lb++ {
			if lb < 0 {
				continue
			}
			cands = append(cands, s.repsByLen[lb]...)
		}
		sort.Ints(cands)
		for _, i := range cands {
			d := boundedLevenshtein(stack, s.clusters[i].Representative, s.Threshold)
			if d <= s.Threshold && d < bestDist {
				best, bestDist = i, d
				if bestDist <= 1 {
					break
				}
			}
		}
	}
	if best >= 0 && bestDist <= s.Threshold {
		s.clusters[best].Members = append(s.clusters[best].Members, id)
		return best, false
	}

	ci := len(s.clusters)
	s.clusters = append(s.clusters, Cluster{
		Representative: stored,
		Members:        []int{id},
	})
	s.repByKey[key] = ci
	s.repsByLen[la] = append(s.repsByLen[la], ci)
	return ci, true
}

// MaxSimilarity returns the highest similarity between stack and any
// stack previously added, or 0 if none has been added. This is the
// feedback signal: fitness is scaled by (1 - MaxSimilarity), so a
// scenario identical to a known one contributes nothing and a novel one
// keeps its full fitness.
//
// The answer is memoized by exact stack key: injection at the same call
// site reproduces the same stack, so repeated probes dominate real
// sessions, and a repeat only rescans the stacks added since the memo
// was written.
func (s *Set) MaxSimilarity(stack []string) float64 {
	key := stackKey(stack)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSimilarityLocked(stack, key)
}

// maxSimilarityLocked answers MaxSimilarity under the write lock,
// reading and refreshing the memo.
func (s *Set) maxSimilarityLocked(stack []string, key string) float64 {
	if s.allN == 0 {
		return 0
	}
	if s.allByKey[key] > 0 {
		return 1
	}
	var best float64
	if m, ok := s.memo[key]; ok {
		best = s.scanLog(stack, m.best, m.upto)
	} else {
		best = s.walkBuckets(stack)
	}
	if s.memo == nil {
		s.memo = make(map[string]simMemo)
	}
	s.memo[key] = simMemo{best: best, upto: len(s.log)}
	return best
}

// PeekSimilarity is the read-only precompute half of MaxSimilarity: it
// answers under the shared lock (never writing the memo, so any number
// of executor workers can screen concurrently) and returns the log
// version the answer is exact for. The committing side passes both to
// ResolveSimilarity, which repairs the answer against any stacks added
// in between — making the pair exactly equivalent to calling
// MaxSimilarity at commit time.
func (s *Set) PeekSimilarity(stack []string, key string) (sim float64, version int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.allN == 0 {
		return 0, 0
	}
	if s.allByKey[key] > 0 {
		return 1, len(s.log)
	}
	var best float64
	if m, ok := s.memo[key]; ok {
		best = s.scanLog(stack, m.best, m.upto)
	} else {
		best = s.walkBuckets(stack)
	}
	return best, len(s.log)
}

// ResolveSimilarity finalizes a PeekSimilarity answer under the write
// lock: it extends sim over the stacks logged since version and memoizes
// the result. The return value equals what MaxSimilarity(stack) would
// compute right now.
func (s *Set) ResolveSimilarity(stack []string, key string, sim float64, version int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if version < len(s.log) {
		sim = s.scanLog(stack, sim, version)
	}
	if s.allByKey[key] == 0 {
		if s.memo == nil {
			s.memo = make(map[string]simMemo)
		}
		s.memo[key] = simMemo{best: sim, upto: len(s.log)}
	}
	return sim
}

// walkBuckets computes the best similarity against the whole memory by
// walking length buckets outward from len(stack). A bucket of length lb
// cannot beat similarity 1 - |la-lb|/max(la,lb), and that bound only
// decays as |la-lb| grows, so the walk stops as soon as the best
// similarity found dominates both directions — typically after a couple
// of buckets.
func (s *Set) walkBuckets(stack []string) float64 {
	la := len(stack)
	best := 0.0
	maxD := la - s.minLen
	if d := s.maxLen - la; d > maxD {
		maxD = d
	}
	for d := 0; d <= maxD; d++ {
		// Upper bounds on similarity for the two buckets at offset d.
		ubLow, ubHigh := -1.0, -1.0
		if lb := la - d; lb >= s.minLen && la > 0 {
			ubLow = float64(lb) / float64(la)
		}
		if lb := la + d; lb <= s.maxLen {
			ubHigh = float64(la) / float64(lb)
		}
		if ubLow <= best && ubHigh <= best {
			break // no farther bucket can win either
		}
		if ubLow > best {
			best = s.scanBucket(s.allByLen[la-d], stack, best)
		}
		if d > 0 && ubHigh > best {
			best = s.scanBucket(s.allByLen[la+d], stack, best)
		}
		if best >= 1 {
			break
		}
	}
	return best
}

// simLimit returns the largest edit distance d whose similarity
// 1 - d/maxLen still beats best, or -1 if none does. The two adjustment
// loops pin the boundary exactly regardless of how the initial
// floating-point guess rounded, so screening decisions match the naive
// full-DP comparison bit for bit.
func simLimit(best float64, maxLen int) int {
	limit := int((1 - best) * float64(maxLen))
	if limit > maxLen {
		limit = maxLen
	}
	for limit >= 0 && 1-float64(limit)/float64(maxLen) <= best {
		limit--
	}
	for limit < maxLen && 1-float64(limit+1)/float64(maxLen) > best {
		limit++
	}
	return limit
}

// beatSim runs the banded DP and reports the similarity when the
// distance is within limit. The similarity expression matches
// Similarity() exactly, so screened answers are bit-identical to naive
// ones.
func beatSim(a, b []string, maxLen, limit int) (float64, bool) {
	d := boundedLevenshtein(a, b, limit)
	if d > limit {
		return 0, false
	}
	return 1 - float64(d)/float64(maxLen), true
}

// shareTailFrame reports whether a and b share a frame value within
// their last k frames — a necessary condition for lev(a,b) < k (the
// last kept frame of an optimal alignment sits within the last k frames
// of both stacks), used to prune index candidates before the DP.
func shareTailFrame(a, b []string, k int) bool {
	ai := len(a) - k
	if ai < 0 {
		ai = 0
	}
	bi := len(b) - k
	if bi < 0 {
		bi = 0
	}
	for _, fa := range a[ai:] {
		for _, fb := range b[bi:] {
			if fa == fb {
				return true
			}
		}
	}
	return false
}

// scanBucket scans one length bucket for a similarity beating best.
//
// The bucket has a fixed stack length, so the edit limit that could
// still beat best is fixed too (simLimit). When that limit L satisfies
// L < len(stack) and L+1 ≤ sigFrames, any stack within distance L must
// share a frame with the probe among the first L+1 frames of both (an
// optimal alignment keeps ≥ len-L frames; at most L edits precede the
// first kept one on either side) — so the byHead inverted index
// shortlists the only possible winners and everything else is skipped
// without running any DP. The symmetric tail condition prunes the
// shortlist further. Survivors are verified with the banded DP, whose
// band shrinks as best improves.
func (s *Set) scanBucket(b *lenBucket, stack []string, best float64) float64 {
	if b == nil || len(b.stacks) == 0 {
		return best
	}
	la, lb := len(stack), len(b.stacks[0])
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	limit := simLimit(best, maxLen)
	if limit < 0 {
		return best
	}
	if limit < la && limit+1 <= sigFrames {
		k := limit + 1
		var visited map[int]struct{}
		for i := 0; i < k; i++ {
			for _, idx := range b.byHead[stack[i]] {
				if visited == nil {
					visited = make(map[int]struct{}, 16)
				}
				if _, dup := visited[idx]; dup {
					continue
				}
				visited[idx] = struct{}{}
				other := b.stacks[idx]
				if !shareTailFrame(stack, other, k) {
					continue
				}
				if sim, ok := beatSim(stack, other, maxLen, limit); ok && sim > best {
					best = sim
					limit = simLimit(best, maxLen)
					if limit < 0 {
						return best
					}
				}
			}
		}
		return best
	}
	for _, other := range b.stacks {
		if sim, ok := beatSim(stack, other, maxLen, limit); ok && sim > best {
			best = sim
			limit = simLimit(best, maxLen)
			if limit < 0 {
				return best
			}
		}
	}
	return best
}

// scanLog extends a similarity answer that is exact for log[:from] over
// the suffix log[from:], returning the best over the whole memory. This
// is what makes both memo entries and precomputed (stale) screening
// answers repairable in time proportional to what was added since.
func (s *Set) scanLog(stack []string, best float64, from int) float64 {
	if best >= 1 {
		return best
	}
	la := len(stack)
	for _, other := range s.log[from:] {
		lb := len(other)
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		if maxLen == 0 {
			return 1 // both empty: identical traces
		}
		limit := simLimit(best, maxLen)
		if limit < 0 {
			continue
		}
		if sim, ok := beatSim(stack, other, maxLen, limit); ok && sim > best {
			best = sim
			if best >= 1 {
				return best
			}
		}
	}
	return best
}

// FeedbackWeight maps a similarity in [0,1] to the fitness multiplier of
// §7.4's linear scale.
func FeedbackWeight(similarity float64) float64 {
	if similarity < 0 {
		return 1
	}
	if similarity > 1 {
		return 0
	}
	return 1 - similarity
}
