package controlplane_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"afex/internal/cluster"
	"afex/internal/controlplane"
	"afex/internal/core"
	"afex/internal/rpcnode"
	"afex/internal/store"
	"afex/internal/targets"
)

// startServer boots a control-plane server on an ephemeral port.
func startServer(t *testing.T) (*controlplane.Manager, *controlplane.Server, *controlplane.Client) {
	t.Helper()
	m := controlplane.NewManager()
	srv, err := controlplane.Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return m, srv, controlplane.NewClient(srv.Addr())
}

// TestLocalSessionOverHTTP drives a full local session through the HTTP
// API: submit, wait, status (with store stats), report, journal,
// metrics.
func TestLocalSessionOverHTTP(t *testing.T) {
	_, _, cl := startServer(t)
	dir := t.TempDir() + "/state"
	st, err := cl.Submit(controlplane.SessionSpec{
		Target:     "mysqld",
		Iterations: 40,
		Seed:       5,
		StateDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != controlplane.StateRunning && st.State != controlplane.StateDone {
		t.Fatalf("submit returned %+v", st)
	}
	if st.Mode != "local" {
		t.Fatalf("mode = %q, want local", st.Mode)
	}
	final, err := cl.Wait(st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != controlplane.StateDone {
		t.Fatalf("final state = %q (%s), want done", final.State, final.Error)
	}
	if final.Snapshot.Executed != 40 {
		t.Fatalf("executed %d, want 40", final.Snapshot.Executed)
	}
	if final.Progress != final.Snapshot.Summary() {
		t.Fatalf("progress %q is not the shared Summary rendering %q", final.Progress, final.Snapshot.Summary())
	}
	if final.Snapshot.Failed == 0 || final.Snapshot.UniqueFailures == 0 {
		t.Fatalf("expected failures from the mysqld model, got %+v", final.Snapshot)
	}

	// Satellite: the status endpoint's "store" object is the exact
	// `afex stats --json` struct — field for field.
	want, err := store.ReadStats(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final.Store == nil || !reflect.DeepEqual(final.Store, want) {
		t.Fatalf("status store stats = %+v, want ReadStats %+v", final.Store, want)
	}

	// The journal endpoint serves the on-disk artifact byte for byte.
	got, err := cl.Journal(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	path, err := store.JournalPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, disk) {
		t.Fatalf("journal endpoint served %d bytes, on-disk journal is %d and differs", len(got), len(disk))
	}

	report, err := cl.Report(st.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "AFEX session report") {
		t.Fatalf("report = %q", report)
	}

	metrics, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`afex_sessions{state="done"} 1`,
		`afex_scenarios_total{session="` + st.ID + `"} 40`,
		`afex_unique_failure_clusters{session="` + st.ID + `"}`,
		`afex_pending_leases{session="` + st.ID + `"}`,
		`afex_worker_pool_recycles_total{session="` + st.ID + `"}`,
		"# TYPE afex_scenarios_per_second gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestStatusJSONSchema pins the wire schema: the status document's
// snapshot uses the shared core.Snapshot JSON tags and the store
// object decodes back into store.Stats without loss.
func TestStatusJSONSchema(t *testing.T) {
	_, srv, cl := startServer(t)
	dir := t.TempDir() + "/state"
	st, err := cl.Submit(controlplane.SessionSpec{Target: "mysqld", Iterations: 20, Seed: 3, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(st.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/v1/sessions/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Snapshot map[string]any  `json:"snapshot"`
		Store    json.RawMessage `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"executed", "failed", "uniqueFailures", "pending", "waitingLeases", "coverage"} {
		if _, ok := doc.Snapshot[key]; !ok {
			t.Errorf("snapshot missing %q: %v", key, doc.Snapshot)
		}
	}
	// Field-for-field: the endpoint's store JSON and a fresh marshal of
	// store.ReadStats (the `afex stats --json` body) are the same map.
	stats, err := store.ReadStats(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, _ := json.Marshal(stats)
	var got, want map[string]any
	if err := json.Unmarshal(doc.Store, &got); err != nil {
		t.Fatal(err)
	}
	json.Unmarshal(wantRaw, &want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("status store JSON %v != stats --json %v", got, want)
	}
}

// TestEventsStreamAndStop exercises the SSE feed against a coordinator
// session with no budget (runs until stopped): the stream yields
// running statuses, stop seals the session, and the stream ends with a
// final event.
func TestEventsStreamAndStop(t *testing.T) {
	_, srv, cl := startServer(t)
	st, err := cl.Submit(controlplane.SessionSpec{
		Target: "mysqld",
		Serve:  "127.0.0.1:0",
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "coordinator" || st.Addr == "" {
		t.Fatalf("submit returned %+v, want a listening coordinator", st)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/v1/sessions/" + st.ID + "/events?interval=100ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := make(chan controlplane.Status, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var s controlplane.Status
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s) == nil {
				events <- s
			}
		}
	}()
	first := <-events
	if first.State != controlplane.StateRunning {
		t.Fatalf("first event state = %q", first.State)
	}
	if _, err := cl.Stop(st.ID); err != nil {
		t.Fatal(err)
	}
	var last controlplane.Status
	for s := range events { // stream ends after the final event
		last = s
	}
	if last.State != controlplane.StateStopped {
		t.Fatalf("final event state = %q, want stopped", last.State)
	}
	if _, err := cl.Stop(st.ID); err != nil { // idempotent
		t.Fatal(err)
	}
}

// runCoordinatorSession submits a coordinator-mode session, drives it
// with in-process rpcnode managers, and returns the sealed result.
func runCoordinatorSession(t *testing.T, m *controlplane.Manager, spec controlplane.SessionSpec, managers int) *core.ResultSet {
	t.Helper()
	s, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	target, err := targets.ByName(spec.Target)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, managers)
	for i := 0; i < managers; i++ {
		go func(id int) {
			mgr, err := rpcnode.Dial(s.Addr(), "m", target)
			if err != nil {
				done <- err
				return
			}
			defer mgr.Close()
			// Single-task protocol: batched leasing prefetches candidates
			// ahead of fold feedback, which perturbs the seeded fitness
			// searches these tests pin cluster for cluster.
			mgr.Batch = 1
			_, err = mgr.RunUntilDone()
			done <- err
		}(i)
	}
	for i := 0; i < managers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-s.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("session never sealed after managers finished")
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("sealed session has no result")
	}
	return res
}

// TestTwoPeerCoordinatorsJointClusters is the multi-coordinator
// acceptance check: two peer coordinators over disjoint Shard regions,
// at half the budget each, jointly find at least as many unique failure
// clusters as a single coordinator with the full budget.
func TestTwoPeerCoordinatorsJointClusters(t *testing.T) {
	const budget = 120
	base := controlplane.SessionSpec{
		Target:    "mysqld",
		Seed:      7,
		Algorithm: "fitness",
	}

	// One node manager per coordinator keeps lease/fold order — and with
	// it the seeded fitness search — deterministic, so the cluster
	// comparison is stable run to run.
	single := controlplane.NewManager()
	defer single.StopAll()
	specSingle := base
	specSingle.Serve = "127.0.0.1:0"
	specSingle.Iterations = budget
	resSingle := runCoordinatorSession(t, single, specSingle, 1)

	peers := controlplane.NewManager()
	defer peers.StopAll()
	var results []*core.ResultSet
	for peer := 0; peer < 2; peer++ {
		spec := base
		spec.Serve = "127.0.0.1:0"
		spec.Iterations = budget / 2
		spec.Peer, spec.Peers = peer, 2
		results = append(results, runCoordinatorSession(t, peers, spec, 1))
	}

	// Joint uniqueness across both peers: one cluster set over every
	// failure stack either peer found, same threshold the engine uses.
	joint := cluster.NewSet(1)
	id := 0
	for _, res := range results {
		for _, rec := range res.Records {
			if rec.Outcome.Failed && len(rec.Outcome.InjectionStack) > 0 {
				joint.Add(id, rec.Outcome.InjectionStack)
				id++
			}
		}
	}
	if joint.Len() == 0 {
		t.Fatal("peer coordinators found no failure clusters at all")
	}
	if joint.Len() < resSingle.UniqueFailures {
		t.Fatalf("two peers at budget %d each found %d joint clusters, single coordinator at %d found %d",
			budget/2, joint.Len(), budget, resSingle.UniqueFailures)
	}
	// The regions really are disjoint: no scenario key appears in both.
	seen := map[string]int{}
	for peer, res := range results {
		for _, rec := range res.Records {
			if prev, ok := seen[rec.Point.Key()]; ok && prev != peer {
				t.Fatalf("point %s explored by both peers", rec.Point.Key())
			}
			seen[rec.Point.Key()] = peer
		}
	}
}

// TestPeerResumeOwnRegion: the peer assignment lands in meta.json, so a
// state directory resumes only as the peer that wrote it.
func TestPeerResumeOwnRegion(t *testing.T) {
	m := controlplane.NewManager()
	defer m.StopAll()
	dir := t.TempDir() + "/peer0"
	spec := controlplane.SessionSpec{
		Target:     "mysqld",
		Seed:       2,
		Serve:      "127.0.0.1:0",
		Iterations: 20,
		Peer:       0,
		Peers:      2,
		StateDir:   dir,
	}
	runCoordinatorSession(t, m, spec, 1)

	stats, err := store.ReadStats(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Peer != 0 || stats.Peers != 2 {
		t.Fatalf("meta records peer %d of %d, want 0 of 2", stats.Peer, stats.Peers)
	}

	// The wrong peer is rejected outright…
	bad := spec
	bad.Peer = 1
	bad.Resume = true
	if _, err := m.Submit(bad); err == nil || !strings.Contains(err.Error(), "peer shard") {
		t.Fatalf("submitting peer 1 against peer 0's directory: err = %v", err)
	}
	// …while the recorded peer resumes its own region.
	resume := spec
	resume.Resume = true
	s, err := m.Submit(resume)
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()
	<-s.Done()
}
