// Package xrand provides the deterministic random primitives used by the
// AFEX exploration algorithm: weighted (fitness-proportional) sampling, a
// discrete Gaussian distribution over attribute indices, permutations, and
// reproducible sub-streams.
//
// Everything in AFEX that involves chance flows through a *Rand so that a
// whole exploration session is reproducible from a single seed. That
// matters for the paper's experiments (comparing fitness-guided vs random
// search on the same fault space must not be confounded by shared RNG
// state) and for the generated regression tests, which must replay the
// exact faults that were found.
package xrand

import (
	"math"
	"math/rand"
)

// Rand is a deterministic random source. It wraps math/rand.Rand with the
// sampling distributions Algorithm 1 needs. A zero Rand is not usable;
// construct one with New.
//
// A Rand's position in its stream is exportable (State/Restore): the
// underlying source is the stock math/rand generator behind a wrapper
// that counts raw draws, so the full generator state is just
// ⟨seed, draws⟩ and restoring replays that many draws from a fresh
// source. Streams are bit-for-bit identical to rand.New(rand.NewSource)
// — exporting costs one counter increment per draw, nothing else.
type Rand struct {
	src   *rand.Rand
	seed  int64
	draws uint64
}

// State is a Rand's exact position in its stream, serializable as two
// integers. Persistent exploration sessions snapshot it so a resumed
// search draws the same values an uninterrupted one would have.
type State struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// countedSource counts every raw draw taken from the wrapped stock
// source. math/rand.Rand derives all its distributions purely from the
// source stream, so the count pins down the generator's entire state.
type countedSource struct {
	inner rand.Source64
	n     *uint64
}

func (s countedSource) Int63() int64 {
	*s.n++
	return s.inner.Int63()
}

func (s countedSource) Uint64() uint64 {
	*s.n++
	return s.inner.Uint64()
}

func (s countedSource) Seed(seed int64) { s.inner.Seed(seed) }

// New returns a Rand seeded with seed. Equal seeds yield equal streams.
func New(seed int64) *Rand {
	r := &Rand{seed: seed}
	r.src = rand.New(countedSource{inner: rand.NewSource(seed).(rand.Source64), n: &r.draws})
	return r
}

// State returns the Rand's current stream position.
func (r *Rand) State() State { return State{Seed: r.seed, Draws: r.draws} }

// Restore returns a Rand positioned exactly at st: the same future values
// as the Rand that exported it. The stock generator's raw draws cost a
// few nanoseconds each, so fast-forwarding even millions of draws is
// cheap next to a single fault-injection test.
func Restore(st State) *Rand {
	r := New(st.Seed)
	src := r.src
	for i := uint64(0); i < st.Draws; i++ {
		src.Uint64()
	}
	r.draws = st.Draws
	return r
}

// DeriveSeed derives the seed of sub-stream id of a base seed, without
// consuming any randomness. It is a pure function — equal (seed, id)
// pairs always yield the same derived seed — built from two rounds of
// splitmix64 finalization, so the derived seeds are uncorrelated both
// across ids for one base seed and across base seeds for one id.
//
// The sharded explorer seeds shard i with DeriveSeed(base, i) and the
// portfolio explorer seeds its arms from a disjoint id range.
// (Compatibility note: before the splitmix derivation, shard streams
// were seeded additively as base + i*1_000_003, so two sessions whose
// base seeds differed by that stride shared shard streams. Sequential
// sharded runs remain deterministic — the derivation is still a pure
// function of (seed, id) — but shard streams differ from those of the
// additive scheme.)
func DeriveSeed(seed int64, id int64) int64 {
	// Finalize the base seed, then advance the splitmix state by id
	// golden-ratio steps (plus a constant, so id 0 does not return a
	// plain finalization of the seed) and finalize again. The two
	// finalizations make the function asymmetric in (seed, id).
	z := mix64(uint64(seed) + 0x9e3779b97f4a7c15)
	z += uint64(id)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	return int64(mix64(z))
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sub derives an independent, reproducible sub-stream identified by id.
// Two Rands with the same seed produce identical Sub(id) streams; different
// ids produce uncorrelated streams. AFEX uses sub-streams to give each node
// manager and each experiment arm its own deterministic randomness.
func (r *Rand) Sub(id int64) *Rand {
	// Mix the id with splitmix64-style finalization so that adjacent ids
	// do not produce correlated seeds.
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return New(r.src.Int63() ^ int64(z))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Weighted samples an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. If the
// total weight is zero (or the slice is empty after clamping), it falls
// back to a uniform choice; this mirrors the behaviour AFEX needs when all
// fitness values are zero early in a session. It panics on an empty slice.
func (r *Rand) Weighted(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: Weighted on empty slice")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// InverseWeighted samples an index with probability inversely proportional
// to weights[i]: low-weight entries are favoured. AFEX uses this to pick
// the victim dropped from the bounded priority queue — tests with low
// fitness have a higher probability of being dropped (§3).
//
// Each weight w is mapped to 1/(epsilon+max(w,0)); epsilon keeps zero
// weights finite and guarantees every entry stays droppable.
func (r *Rand) InverseWeighted(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: InverseWeighted on empty slice")
	}
	const epsilon = 1e-9
	inv := make([]float64, len(weights))
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		inv[i] = 1 / (epsilon + w)
	}
	return r.Weighted(inv)
}

// Gaussian samples an index in [0, n) from a discrete approximation of a
// Gaussian centred at mean with standard deviation sigma, excluding the
// mean itself when n > 1 (Algorithm 1 mutates an attribute, so returning
// the old value would waste an iteration). Probability mass outside the
// valid range is redistributed by rejection.
//
// This is the mutation distribution of §3: it favours the closest
// neighbours of the current value "without completely dismissing points
// that are further away". The paper uses sigma = |Ai|/5.
func (r *Rand) Gaussian(n int, mean int, sigma float64) int {
	if n <= 0 {
		panic("xrand: Gaussian with n <= 0")
	}
	if n == 1 {
		return 0
	}
	if sigma <= 0 {
		sigma = 1
	}
	for tries := 0; ; tries++ {
		v := int(math.Round(r.src.NormFloat64()*sigma + float64(mean)))
		if v >= 0 && v < n && v != mean {
			return v
		}
		if tries >= 64 {
			// Pathological sigma/mean combinations (e.g. mean far outside
			// the range) can make rejection slow; fall back to a uniform
			// draw over the valid, non-mean values.
			v := r.Intn(n - 1)
			if v >= mean && mean >= 0 && mean < n {
				v++
			}
			return v
		}
	}
}

// Normalize scales weights so they sum to 1, writing into a fresh slice.
// Negative entries are clamped to zero first. If everything is zero the
// result is uniform. This implements the normalize() step on line 5 of
// Algorithm 1 (sensitivity → attribute selection probabilities).
func Normalize(weights []float64) []float64 {
	out := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 && !math.IsInf(w, 1) && !math.IsNaN(w) {
			out[i] = w
			total += w
		}
	}
	if total <= 0 || math.IsInf(total, 1) {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples. The impact-precision metric of §5 is 1/Variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return v / float64(len(xs))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
