//go:build !unix

package main

// die approximates a crash on platforms without self-delivered fatal
// signals: a runtime panic (nonzero exit). The supervisor then reports
// Failed but not Crashed — crash detection is signal-based.
func die() {
	panic("crashy: unchecked allocation dereferenced")
}
