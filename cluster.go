package afex

import (
	"fmt"
	"time"

	"afex/internal/core"
	"afex/internal/explore"
	"afex/internal/faultspace"
	"afex/internal/rpcnode"
	"afex/internal/store"
)

// Distributed-mode re-exports (§6.1/§7.7): an explorer served over TCP
// with node managers pulling tests from it. See package rpcnode for the
// protocol details.
//
// The coordinator is a protocol adapter over the same execution engine
// (Engine) local sessions use, so a distributed session scores, clusters
// and tallies identically to a local one — and Coordinator.Result
// returns the same full Result a local Explore does, synopsis included.
type (
	// Coordinator adapts remote node managers to the shared execution
	// engine behind the cluster RPC service.
	Coordinator = rpcnode.Coordinator
	// CoordinatorServer is a listening coordinator.
	CoordinatorServer = rpcnode.Server
	// Manager is a remote node manager.
	Manager = rpcnode.Manager
	// ClusterStats summarizes a distributed session.
	ClusterStats = rpcnode.Stats
)

// newClusterExplorer builds the coordinator-side exploration stack:
// the named registered strategy, wrapped in sharding when shards > 1 —
// the same composition order (strategy → sharded) local sessions use.
// algorithm == "" selects the fitness default.
func newClusterExplorer(space *Space, algorithm string, cfg ExploreOptions, shards int) (explore.Explorer, error) {
	if algorithm == "" {
		algorithm = FitnessGuided
	}
	if shards > 1 {
		return explore.NewShardedStrategy(space, shards, algorithm, cfg)
	}
	return explore.New(algorithm, space, cfg)
}

// NewCoordinator wraps a fitness-guided explorer over space for
// distributed execution. budget caps the number of executed tests
// (0 = until the space is exhausted); impact == nil selects the default
// scoring.
func NewCoordinator(space *Space, cfg ExploreOptions, budget int) *Coordinator {
	return rpcnode.NewCoordinator(space, explore.NewFitnessGuided(space, cfg), budget, nil)
}

// NewShardedCoordinator is NewCoordinator with the space partitioned
// into shards disjoint regions (Space.Shard), one independent
// fitness-guided search per region, candidates striped across them — so
// remote node managers always work disjoint parts of the space. shards
// <= 1 degenerates to NewCoordinator. Use NewCoordinatorFor to pick a
// different strategy.
func NewShardedCoordinator(space *Space, cfg ExploreOptions, budget, shards int) *Coordinator {
	c, err := NewCoordinatorFor(space, FitnessGuided, cfg, budget, shards)
	if err != nil {
		// The fitness strategy is always registered.
		panic("afex: " + err.Error())
	}
	return c
}

// NewCoordinatorFor builds a distributed coordinator running any
// registered exploration strategy ("fitness", "random", "genetic",
// "portfolio", …), sharded over shards disjoint regions when shards >
// 1. Unknown algorithm names return the registry's error listing every
// valid choice.
func NewCoordinatorFor(space *Space, algorithm string, cfg ExploreOptions, budget, shards int) (*Coordinator, error) {
	ex, err := newClusterExplorer(space, algorithm, cfg, shards)
	if err != nil {
		return nil, err
	}
	return rpcnode.NewCoordinatorConfig(core.Config{Space: space, Iterations: budget}, ex, nil)
}

// CoordinatorOptions configures NewCoordinatorWithOptions — the full
// surface of a (possibly persistent, possibly peer-sharded)
// distributed coordinator.
type CoordinatorOptions struct {
	// TargetName labels the session (managers load the target itself).
	TargetName string
	// Space is the fault space to explore — the full space; when
	// Peers > 1 the coordinator carves out and explores only its own
	// region (Space.Shard(Peers)[Peer]).
	Space *Space
	// Algorithm selects the exploration strategy ("" = fitness).
	Algorithm string
	// Explore tunes it (Seed et al.).
	Explore ExploreOptions
	// Budget caps executed tests (0 = until the region is exhausted).
	Budget int
	// Shards partitions this coordinator's own space into disjoint
	// per-strategy regions (within its peer region, when both are set).
	Shards int
	// LeaseTimeout re-leases tasks never reported back (0 = never).
	LeaseTimeout time.Duration
	// Prefetch enables the engine's asynchronous candidate prefetch
	// ring (Options.PrefetchDepth): NextBatch rounds are then served
	// from pre-generated candidates under the narrow lease lock instead
	// of running the explorer under the session lock. Positive fixes
	// the ring capacity, PrefetchAdaptive (-1) tracks ~2× the adaptive
	// wire batch, 0 keeps the synchronous path.
	Prefetch int
	// HeartbeatEvery/HeartbeatMisses enable heartbeat-driven liveness:
	// a manager silent for HeartbeatMisses beats has its leases expired
	// immediately (see Coordinator.SetHeartbeat). Zero disables.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// StateDir persists the session (empty = in-memory only);
	// JournalFormat picks the journal encoding for a new directory, and
	// Resume restores the explorer's search state.
	StateDir      string
	JournalFormat string
	Resume        bool
	// Peer/Peers place this coordinator in a multi-coordinator hunt:
	// the space is split across Peers coordinators via Space.Shard and
	// this one owns region Peer (0-based). The assignment is recorded
	// in the state directory's meta.json, so each peer can only ever
	// resume its own region. Peers <= 1 means single-coordinator.
	Peer  int
	Peers int
}

// NewCoordinatorWithOptions builds a distributed coordinator from the
// full options surface: any registered strategy, optional persistence,
// lease expiry, heartbeat liveness, and multi-coordinator peer
// sharding. The returned cleanup flushes and closes the store (a no-op
// without StateDir); call it after Coordinator.Result.
func NewCoordinatorWithOptions(o CoordinatorOptions) (*Coordinator, func() error, error) {
	space := o.Space
	if o.Peers > 1 {
		if o.Peer < 0 || o.Peer >= o.Peers {
			return nil, nil, fmt.Errorf("afex: peer %d out of range for %d peers", o.Peer, o.Peers)
		}
		regions := space.Shard(o.Peers)
		if o.Peer >= len(regions) {
			return nil, nil, fmt.Errorf("afex: space %q splits into only %d regions, peer %d has none",
				faultspace.Signature(space), len(regions), o.Peer)
		}
		space = regions[o.Peer]
	}
	ecfg := core.Config{Space: space, Iterations: o.Budget, Resume: o.Resume, PrefetchDepth: o.Prefetch}
	cleanup := func() error { return nil }
	if o.StateDir != "" {
		st, err := store.OpenOptions(o.StateDir, store.Options{
			Format:     o.JournalFormat,
			TailResume: o.Resume,
			Peer:       o.Peer,
			Peers:      o.Peers,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := st.AttachNamed(&ecfg, o.TargetName); err != nil {
			st.Close()
			return nil, nil, err
		}
		cleanup = st.Close
	}
	ex, err := newClusterExplorer(space, o.Algorithm, o.Explore, o.Shards)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	coord, err := rpcnode.NewCoordinatorConfig(ecfg, ex, nil)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	coord.SetTargetName(o.TargetName)
	if o.LeaseTimeout > 0 {
		coord.SetLeaseTimeout(o.LeaseTimeout)
	}
	if o.HeartbeatEvery > 0 {
		coord.SetHeartbeat(o.HeartbeatEvery, o.HeartbeatMisses)
	}
	return coord, cleanup, nil
}

// NewPersistentCoordinator is NewCoordinatorFor backed by the
// persistent exploration store: the coordinator journals every result
// its managers report under stateDir, snapshots the session state, and —
// on a directory with prior state — continues the same session, never
// re-leasing a journaled scenario. resume additionally restores the
// explorer's search state (including a portfolio's bandit counters), so
// a restarted `afex serve` picks up exactly where the killed one
// stopped. targetName is recorded in the store's metadata (a
// coordinator never loads the target itself). algorithm == "" selects
// the fitness default.
//
// The returned cleanup function flushes and closes the store; call it
// after Coordinator.Result.
func NewPersistentCoordinator(targetName string, space *Space, algorithm string, cfg ExploreOptions, budget, shards int, stateDir string, resume bool) (*Coordinator, func() error, error) {
	return NewCoordinatorWithOptions(CoordinatorOptions{
		TargetName: targetName,
		Space:      space,
		Algorithm:  algorithm,
		Explore:    cfg,
		Budget:     budget,
		Shards:     shards,
		StateDir:   stateDir,
		Resume:     resume,
	})
}

// ServeCoordinator starts serving the coordinator on addr ("host:port";
// ":0" picks an ephemeral port, see CoordinatorServer.Addr).
func ServeCoordinator(addr string, c *Coordinator) (*CoordinatorServer, error) {
	return rpcnode.Serve(addr, c)
}

// DialManager connects a node manager (with its local copy of the
// target) to a coordinator.
func DialManager(addr, id string, target *System) (*Manager, error) {
	return rpcnode.Dial(addr, id, target)
}

// DialManagerBackend connects a node manager that executes leased
// tests on any registered execution backend — e.g. ProcessBackend with
// a Command spec runs every leased scenario as a real supervised
// subprocess on the manager's machine, so a cluster can mix model
// managers with real-process ones. Unknown backend names fail with the
// registry's error listing every valid choice.
func DialManagerBackend(addr, id, backendName string, cfg BackendConfig) (*Manager, error) {
	return rpcnode.DialBackend(addr, id, backendName, cfg)
}
