// Package controlplane is AFEX's fleet service layer: a long-lived
// session manager that wraps the shared execution engine (core.Engine)
// and the distributed coordinator (rpcnode.Coordinator) behind an
// HTTP/JSON control API, so fault-hunting sessions are submitted,
// watched, and harvested over the wire instead of one-per-process.
//
// The paper's premise is that fault-space exploration is a throughput
// game — AFEX wins by parallelizing scenario execution across machines
// (§6.1/§7.7) — and the control plane is what turns the engine into a
// service that scales that way:
//
//   - Manager hosts any number of concurrent Sessions, each a full
//     exploration session: local (the in-process worker pool runs the
//     scenarios) or coordinator (an rpcnode RPC endpoint is served and
//     remote node managers execute).
//   - Server (server.go) exposes the manager over HTTP: submit a
//     SessionSpec, poll Status (the engine's live Snapshot — arms,
//     clusters, lease waits — plus the store's artifact stats), stream
//     progress via SSE, fetch the journal and the report, stop.
//   - /metrics (metrics.go) exports the same state in Prometheus text
//     exposition format, hand-rolled on stdlib only.
//   - Multi-coordinator hunts: a spec with Peers > 1 makes the session
//     explore region Peer of the space split by faultspace.Union.Shard,
//     so N coordinators × M managers hunt one space in disjoint
//     regions; the assignment is recorded in the state directory's
//     meta.json, so each peer only ever resumes its own region.
package controlplane

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"afex/internal/backend"
	"afex/internal/core"
	"afex/internal/dsl"
	"afex/internal/explore"
	"afex/internal/faultspace"
	"afex/internal/prog"
	"afex/internal/rpcnode"
	"afex/internal/store"
	"afex/internal/targets"
	"afex/internal/trace"
)

// SessionSpec is the JSON body of POST /v1/sessions: everything needed
// to start one exploration session. Durations are strings in Go's
// time.ParseDuration syntax ("30s", "2m"), keeping curl bodies
// human-writable.
type SessionSpec struct {
	// Target is the system under test: a built-in model name
	// ("mysqld", …) or a "cmd:" process spec ("cmd:./crashy {test}").
	Target string `json:"target"`
	// Backend selects the execution backend ("model", "process");
	// empty infers it from the target's kind. Local sessions only —
	// coordinator sessions execute on their remote managers.
	Backend string `json:"backend,omitempty"`
	// Space is a fault-space description in the Fig. 3 language.
	// Required for cmd: targets; overrides the profiled space for
	// built-in ones.
	Space string `json:"space,omitempty"`
	// Funcs/CallLo/CallHi shape the profiled space of a built-in
	// target when Space is empty (defaults 19/1/10).
	Funcs  int `json:"funcs,omitempty"`
	CallLo int `json:"callLo,omitempty"`
	CallHi int `json:"callHi,omitempty"`
	// Algorithm selects the exploration strategy ("" = fitness).
	Algorithm string `json:"algorithm,omitempty"`
	// Iterations caps executed tests (0 = until the space is
	// exhausted; coordinator sessions with 0 run until stopped).
	Iterations int `json:"iterations,omitempty"`
	// Seed is the RNG seed.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the local worker count (local sessions).
	Workers int `json:"workers,omitempty"`
	// Shards partitions the session's space into per-strategy regions.
	Shards int `json:"shards,omitempty"`
	// Feedback enables §7.4 result-quality feedback.
	Feedback bool `json:"feedback,omitempty"`
	// Prefetch enables the engine's asynchronous candidate prefetch
	// ring (core.Config.PrefetchDepth): positive fixes the ring
	// capacity, -1 sizes it adaptively, 0 keeps the synchronous lease
	// path.
	Prefetch int `json:"prefetch,omitempty"`
	// TestArgs are the process backend's per-test argument rows
	// (row i serves testID i), each row whitespace-split.
	TestArgs []string `json:"testArgs,omitempty"`
	// Timeout is the process backend's per-test wall-clock cap.
	Timeout string `json:"timeout,omitempty"`
	// Procs/TestsPerProc tune the process backend's worker pool.
	Procs        int `json:"procs,omitempty"`
	TestsPerProc int `json:"testsPerProc,omitempty"`
	// TimeBudget stops the session after this much wall clock.
	TimeBudget string `json:"timeBudget,omitempty"`
	// StateDir persists the session; JournalFormat picks the journal
	// encoding for a new directory; Resume restores the explorer's
	// search state from the directory's snapshot.
	StateDir      string `json:"stateDir,omitempty"`
	JournalFormat string `json:"journalFormat,omitempty"`
	Resume        bool   `json:"resume,omitempty"`
	// Serve switches the session to coordinator mode: an rpcnode RPC
	// endpoint is served on this address ("host:port", ":0" for an
	// ephemeral port) and remote node managers execute the scenarios.
	Serve string `json:"serve,omitempty"`
	// LeaseTimeout re-leases tasks never reported back (coordinator
	// and lease-tracking local sessions).
	LeaseTimeout string `json:"leaseTimeout,omitempty"`
	// Heartbeat enables heartbeat-driven manager liveness on a
	// coordinator session: a manager silent for HeartbeatMisses beats
	// of this interval has its leases expired immediately.
	Heartbeat       string `json:"heartbeat,omitempty"`
	HeartbeatMisses int    `json:"heartbeatMisses,omitempty"`
	// Peer/Peers place the session in a multi-coordinator hunt: the
	// space is split across Peers coordinators via Union.Shard and this
	// session explores region Peer (0-based). Recorded in meta.json.
	Peer  int `json:"peer,omitempty"`
	Peers int `json:"peers,omitempty"`
}

// Session states.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateStopped = "stopped"
	StateFailed  = "failed"
)

// Status is the wire form of one session's state — the schema of
// GET /v1/sessions/{id}, shared with `afex status` and (via the Store
// field, which is exactly the `afex stats --json` struct) with the
// state-directory inspector.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Mode is "local" (in-process worker pool) or "coordinator"
	// (remote managers over RPC).
	Mode      string `json:"mode"`
	Target    string `json:"target"`
	Backend   string `json:"backend,omitempty"`
	Algorithm string `json:"algorithm"`
	// Addr is the coordinator session's manager RPC address.
	Addr   string `json:"addr,omitempty"`
	Budget int    `json:"budget,omitempty"`
	// Peer/Peers are the session's multi-coordinator shard assignment.
	Peer     int    `json:"peer,omitempty"`
	Peers    int    `json:"peers,omitempty"`
	StateDir string `json:"stateDir,omitempty"`
	// Snapshot is the engine's live tally, arms and lease waits
	// included; Progress is its shared one-line rendering
	// (core.Snapshot.Summary — the same line --progress prints).
	Snapshot core.Snapshot `json:"snapshot"`
	Progress string        `json:"progress"`
	// PerManager counts tests executed by each remote manager
	// (coordinator sessions).
	PerManager map[string]int `json:"perManager,omitempty"`
	Error      string         `json:"error,omitempty"`
	// Store is the session state directory's artifact statistics —
	// the exact struct `afex stats --json` emits (store.Stats). Absent
	// for store-less sessions.
	Store *store.Stats `json:"store,omitempty"`
}

// Manager hosts concurrent exploration sessions. It is safe for
// concurrent use; Server exposes it over HTTP.
type Manager struct {
	mu       sync.Mutex
	seq      int
	sessions map[string]*Session
	order    []string
}

// NewManager returns an empty session manager.
func NewManager() *Manager {
	return &Manager{sessions: make(map[string]*Session)}
}

// Session is one running (or finished) exploration session.
type Session struct {
	// ID is the manager-assigned session identifier ("s1", "s2", …).
	ID string
	// Spec is the submitted spec, normalized.
	Spec SessionSpec

	mode    string
	backend string
	budget  int
	started time.Time

	eng     *core.Engine
	coord   *rpcnode.Coordinator
	rpc     *rpcnode.Server
	cleanup func() error

	stopOnce sync.Once
	stopping chan struct{}
	done     chan struct{}

	mu       sync.Mutex
	state    string
	finished time.Time
	res      *core.ResultSet
	err      error
}

// parseDur parses an optional duration field.
func parseDur(field, v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("controlplane: %s: %w", field, err)
	}
	return d, nil
}

// buildSpace resolves a spec's fault space: the DSL description when
// given, the target's profiled space otherwise.
func buildSpace(spec *SessionSpec, target *prog.Program) (*faultspace.Union, error) {
	if spec.Space != "" {
		d, err := dsl.Parse(spec.Space)
		if err != nil {
			return nil, err
		}
		return d.Build(), nil
	}
	if target == nil {
		return nil, fmt.Errorf("controlplane: cmd: targets need a space description")
	}
	funcs, lo, hi := spec.Funcs, spec.CallLo, spec.CallHi
	if funcs <= 0 {
		funcs = 19
	}
	if hi <= 0 {
		lo, hi = 1, 10
	}
	return trace.Profile(target).BuildSpace(funcs, lo, hi), nil
}

// Submit validates a spec, starts its session, and registers it under a
// fresh ID. The session runs in the background; watch it via Status,
// Done, or the server's events stream.
func (m *Manager) Submit(spec SessionSpec) (*Session, error) {
	s, err := m.build(spec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.seq++
	s.ID = fmt.Sprintf("s%d", m.seq)
	m.sessions[s.ID] = s
	m.order = append(m.order, s.ID)
	m.mu.Unlock()
	s.start()
	return s, nil
}

// build constructs the session without starting or registering it.
func (m *Manager) build(spec SessionSpec) (*Session, error) {
	if spec.Target == "" {
		return nil, fmt.Errorf("controlplane: spec has no target")
	}
	if spec.Algorithm == "" {
		spec.Algorithm = "fitness"
	}
	execTimeout, err := parseDur("timeout", spec.Timeout)
	if err != nil {
		return nil, err
	}
	timeBudget, err := parseDur("timeBudget", spec.TimeBudget)
	if err != nil {
		return nil, err
	}
	leaseTimeout, err := parseDur("leaseTimeout", spec.LeaseTimeout)
	if err != nil {
		return nil, err
	}
	heartbeat, err := parseDur("heartbeat", spec.Heartbeat)
	if err != nil {
		return nil, err
	}

	// Target resolution mirrors the CLI: built-in model targets load
	// in-process, cmd: specs describe a process-backend fixture.
	var target *prog.Program
	var command *backend.CommandSpec
	if strings.HasPrefix(spec.Target, "cmd:") {
		if command, err = backend.ParseSpec(spec.Target); err != nil {
			return nil, err
		}
		for _, row := range spec.TestArgs {
			command.TestArgs = append(command.TestArgs, strings.Fields(row))
		}
	} else {
		if target, err = targets.ByName(spec.Target); err != nil {
			return nil, err
		}
	}
	space, err := buildSpace(&spec, target)
	if err != nil {
		return nil, err
	}
	// Peer sharding: this session owns one disjoint region of the
	// space, carved by the same Union.Shard local sharded sessions use.
	if spec.Peers > 1 {
		if spec.Peer < 0 || spec.Peer >= spec.Peers {
			return nil, fmt.Errorf("controlplane: peer %d out of range for %d peers", spec.Peer, spec.Peers)
		}
		regions := space.Shard(spec.Peers)
		if spec.Peer >= len(regions) {
			return nil, fmt.Errorf("controlplane: space splits into only %d regions, peer %d has none",
				len(regions), spec.Peer)
		}
		space = regions[spec.Peer]
	} else {
		spec.Peer, spec.Peers = 0, 0
	}

	s := &Session{
		Spec:     spec,
		budget:   spec.Iterations,
		state:    StateRunning,
		stopping: make(chan struct{}),
		done:     make(chan struct{}),
		cleanup:  func() error { return nil },
	}
	openStore := func(cfg *core.Config, targetName string) error {
		if spec.StateDir == "" {
			return nil
		}
		st, err := store.OpenOptions(spec.StateDir, store.Options{
			Format:     spec.JournalFormat,
			TailResume: spec.Resume,
			Peer:       spec.Peer,
			Peers:      spec.Peers,
		})
		if err != nil {
			return err
		}
		if err := st.AttachNamed(cfg, targetName); err != nil {
			st.Close()
			return err
		}
		s.cleanup = st.Close
		return nil
	}

	if spec.Serve != "" {
		// Coordinator mode: serve the rpcnode protocol, remote managers
		// execute. The engine runs nothing locally.
		s.mode = "coordinator"
		ecfg := core.Config{Space: space, Iterations: spec.Iterations, Resume: spec.Resume, PrefetchDepth: spec.Prefetch}
		if err := openStore(&ecfg, spec.Target); err != nil {
			return nil, err
		}
		var ex explore.Explorer
		if spec.Shards > 1 {
			ex, err = explore.NewShardedStrategy(space, spec.Shards, spec.Algorithm, explore.Config{Seed: spec.Seed})
		} else {
			ex, err = explore.New(spec.Algorithm, space, explore.Config{Seed: spec.Seed})
		}
		if err != nil {
			s.cleanup()
			return nil, err
		}
		coord, err := rpcnode.NewCoordinatorConfig(ecfg, ex, nil)
		if err != nil {
			s.cleanup()
			return nil, err
		}
		coord.SetTargetName(spec.Target)
		if leaseTimeout > 0 {
			coord.SetLeaseTimeout(leaseTimeout)
		}
		if heartbeat > 0 {
			coord.SetHeartbeat(heartbeat, spec.HeartbeatMisses)
		}
		srv, err := rpcnode.Serve(spec.Serve, coord)
		if err != nil {
			s.cleanup()
			return nil, err
		}
		s.coord, s.rpc, s.eng = coord, srv, coord.Engine()
		return s, nil
	}

	// Local mode: the engine's own worker pool executes.
	s.mode = "local"
	cfg := core.Config{
		Target:        target,
		Backend:       spec.Backend,
		Command:       command,
		ExecTimeout:   execTimeout,
		Procs:         spec.Procs,
		TestsPerProc:  spec.TestsPerProc,
		Space:         space,
		Algorithm:     spec.Algorithm,
		Explore:       explore.Config{Seed: spec.Seed},
		Iterations:    spec.Iterations,
		Workers:       spec.Workers,
		Shards:        spec.Shards,
		Feedback:      spec.Feedback,
		PrefetchDepth: spec.Prefetch,
		TimeBudget:    timeBudget,
		LeaseTimeout:  leaseTimeout,
		Resume:        spec.Resume,
		JournalFormat: spec.JournalFormat,
	}
	targetName := spec.Target
	if command != nil {
		targetName = command.Target()
	}
	if err := openStore(&cfg, targetName); err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(cfg, nil)
	if err != nil {
		s.cleanup()
		return nil, err
	}
	s.eng = eng
	s.backend = eng.Backend()
	return s, nil
}

// start launches the session's run loop.
func (s *Session) start() {
	s.started = time.Now()
	if s.mode == "coordinator" {
		go s.runCoordinator()
		return
	}
	go func() {
		res := s.eng.RunLocal()
		s.finish(res, s.cleanup())
	}()
}

// runCoordinator watches a coordinator session until its budget is
// consumed or Stop is called, then seals it. Sessions with no budget
// run until stopped — the coordinator cannot tell a drained space from
// managers that have yet to connect.
func (s *Session) runCoordinator() {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.stopping:
		case <-t.C:
			if s.budget <= 0 || s.eng.Snapshot().Executed < s.budget {
				continue
			}
		}
		s.eng.Stop()
		res := s.coord.Result()
		s.rpc.Close()
		s.finish(res, s.cleanup())
		return
	}
}

// finish seals the session: result, error, final state.
func (s *Session) finish(res *core.ResultSet, cleanupErr error) {
	s.mu.Lock()
	s.res, s.err = res, cleanupErr
	s.finished = time.Now()
	switch {
	case cleanupErr != nil:
		s.state = StateFailed
	case s.stopRequested():
		s.state = StateStopped
	default:
		s.state = StateDone
	}
	s.mu.Unlock()
	close(s.done)
}

func (s *Session) stopRequested() bool {
	select {
	case <-s.stopping:
		return true
	default:
		return false
	}
}

// Stop requests the session to end: leasing stops, in-flight tests
// still fold, and the session seals (local mode via RunLocal's return,
// coordinator mode via the watcher). Idempotent.
func (s *Session) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		s.eng.Stop()
	})
}

// Done is closed when the session has sealed its result.
func (s *Session) Done() <-chan struct{} { return s.done }

// Result returns the sealed result set and the store error, or nil
// while the session is still running.
func (s *Session) Result() (*core.ResultSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res, s.err
}

// Addr returns the coordinator session's manager RPC address ("" for
// local sessions).
func (s *Session) Addr() string {
	if s.rpc == nil {
		return ""
	}
	return s.rpc.Addr()
}

// Status assembles the session's wire status. withStore additionally
// reads the state directory's artifact statistics (an O(journal) scan;
// the list endpoint skips it).
func (s *Session) Status(withStore bool) Status {
	snap := s.eng.Snapshot()
	s.mu.Lock()
	state, errMsg := s.state, ""
	if s.err != nil {
		errMsg = s.err.Error()
	}
	s.mu.Unlock()
	st := Status{
		ID:        s.ID,
		State:     state,
		Mode:      s.mode,
		Target:    s.Spec.Target,
		Backend:   s.backend,
		Algorithm: s.Spec.Algorithm,
		Addr:      s.Addr(),
		Budget:    s.budget,
		Peer:      s.Spec.Peer,
		Peers:     s.Spec.Peers,
		StateDir:  s.Spec.StateDir,
		Snapshot:  snap,
		Progress:  snap.Summary(),
		Error:     errMsg,
	}
	if s.coord != nil {
		st.PerManager = s.coord.Snapshot().PerManager
	}
	if withStore && s.Spec.StateDir != "" {
		if stats, err := store.ReadStats(s.Spec.StateDir); err == nil {
			st.Store = stats
		}
	}
	return st
}

// rate returns the session's scenarios/second so far (metrics).
func (s *Session) rate(snap core.Snapshot) float64 {
	s.mu.Lock()
	end := s.finished
	s.mu.Unlock()
	if end.IsZero() {
		end = time.Now()
	}
	elapsed := end.Sub(s.started).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(snap.Executed) / elapsed
}

// Get returns a session by ID.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// List returns every session in submission order.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.sessions[id])
	}
	return out
}

// StopAll stops every session and waits for each to seal — the
// manager's shutdown path.
func (m *Manager) StopAll() {
	for _, s := range m.List() {
		s.Stop()
	}
	for _, s := range m.List() {
		<-s.Done()
	}
}
