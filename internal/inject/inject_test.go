package inject

import (
	"strings"
	"testing"

	"afex/internal/dsl"
	"afex/internal/libc"
)

func TestInjectorFiresExactlyOnce(t *testing.T) {
	plan := Single(Fault{Function: "read", CallNumber: 2, Err: libc.ErrorReturn{Retval: -1, Errno: "EIO"}})
	in := Armed(plan)
	if _, fired := in.Inject("read", 1); fired {
		t.Fatal("fired at wrong call number")
	}
	er, fired := in.Inject("read", 2)
	if !fired || er.Errno != "EIO" {
		t.Fatalf("did not fire at call 2: %+v %v", er, fired)
	}
	if _, fired := in.Inject("read", 2); fired {
		t.Fatal("fired twice for the same plan entry")
	}
	if in.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", in.Fired())
	}
}

func TestInjectorMultiFault(t *testing.T) {
	plan := Plan{Faults: []Fault{
		{Function: "read", CallNumber: 3, Err: libc.ErrorReturn{Retval: -1, Errno: "EINTR"}},
		{Function: "malloc", CallNumber: 7, Err: libc.ErrorReturn{Retval: 0, Errno: "ENOMEM"}},
	}}
	in := Armed(plan)
	if _, fired := in.Inject("malloc", 7); !fired {
		t.Error("second fault did not fire")
	}
	if _, fired := in.Inject("read", 3); !fired {
		t.Error("first fault did not fire")
	}
	if in.Fired() != 2 {
		t.Errorf("Fired = %d, want 2", in.Fired())
	}
}

func TestPlanEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Error("zero plan should be empty")
	}
	if !Single(Fault{Function: "read", CallNumber: 0}).Empty() {
		t.Error("callNumber 0 means no injection")
	}
	if Single(Fault{Function: "read", CallNumber: 1}).Empty() {
		t.Error("armed plan reported empty")
	}
}

func TestFaultAndPlanString(t *testing.T) {
	f := Fault{Function: "malloc", CallNumber: 23, Err: libc.ErrorReturn{Retval: 0, Errno: "ENOMEM"}}
	// Fig. 5's wire format.
	if got := f.String(); got != "function malloc errno ENOMEM retval 0 callNumber 23" {
		t.Errorf("Fault.String = %q", got)
	}
	p := Plan{Faults: []Fault{f, f}}
	if got := p.String(); !strings.Contains(got, "; ") {
		t.Errorf("multi-fault plan string = %q", got)
	}
}

func TestPointString(t *testing.T) {
	pt := Point{TestID: 5, Function: "read", CallNumber: 3}
	if got := pt.String(); got != "test=5 read@3" {
		t.Errorf("Point.String = %q", got)
	}
}

func TestPluginConvertBasics(t *testing.T) {
	var p Plugin
	pt, plan, err := p.Convert(dsl.Scenario{
		"testID": "7", "function": "read", "errno": "EINTR", "retval": "-1", "callNumber": "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.TestID != 7 || pt.Function != "read" || pt.CallNumber != 3 {
		t.Errorf("point = %+v", pt)
	}
	if len(plan.Faults) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	f := plan.Faults[0]
	if f.Err.Errno != "EINTR" || f.Err.Retval != -1 {
		t.Errorf("fault error = %+v", f.Err)
	}
}

func TestPluginConvertDefaultsFromProfile(t *testing.T) {
	var p Plugin
	_, plan, err := p.Convert(dsl.Scenario{"function": "malloc", "callNumber": "2"})
	if err != nil {
		t.Fatal(err)
	}
	f := plan.Faults[0]
	if f.Err.Errno != "ENOMEM" || f.Err.Retval != 0 {
		t.Errorf("malloc defaults = %+v, want NULL/ENOMEM from the fault profile", f.Err)
	}
}

func TestPluginConvertDefaultCallNumber(t *testing.T) {
	var p Plugin
	pt, _, err := p.Convert(dsl.Scenario{"function": "read"})
	if err != nil {
		t.Fatal(err)
	}
	if pt.CallNumber != 1 {
		t.Errorf("default callNumber = %d, want 1", pt.CallNumber)
	}
}

func TestPluginConvertRetValSpelling(t *testing.T) {
	// Fig. 4 spells it "retVal" in one subspace and "retval" in another.
	var p Plugin
	_, plan, err := p.Convert(dsl.Scenario{"function": "read", "retVal": "-1", "callNumber": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Faults[0].Err.Retval != -1 {
		t.Errorf("retVal spelling ignored: %+v", plan.Faults[0].Err)
	}
}

func TestPluginConvertUnknownErrnoKeepsRetval(t *testing.T) {
	var p Plugin
	_, plan, err := p.Convert(dsl.Scenario{"function": "read", "errno": "EWHATEVER", "callNumber": "1"})
	if err != nil {
		t.Fatal(err)
	}
	f := plan.Faults[0]
	if f.Err.Errno != "EWHATEVER" {
		t.Errorf("tester-supplied errno dropped: %+v", f.Err)
	}
	if f.Err.Retval != -1 {
		t.Errorf("profile retval not preserved: %+v", f.Err)
	}
}

func TestPluginConvertTwoFaultScenario(t *testing.T) {
	var p Plugin
	pt, plan, err := p.Convert(dsl.Scenario{
		"testID":   "3",
		"function": "read", "errno": "EINTR", "callNumber": "3",
		"function2": "malloc", "errno2": "ENOMEM", "callNumber2": "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Function != "read" || pt.CallNumber != 3 {
		t.Errorf("primary point = %+v", pt)
	}
	if len(plan.Faults) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	second := plan.Faults[1]
	if second.Function != "malloc" || second.CallNumber != 7 || second.Err.Errno != "ENOMEM" {
		t.Errorf("secondary fault = %+v", second)
	}
}

func TestPluginConvertSecondSlotNoInjection(t *testing.T) {
	var p Plugin
	_, plan, err := p.Convert(dsl.Scenario{
		"function": "read", "callNumber": "1",
		"function2": "malloc", "callNumber2": "0", // explicit no-injection slot
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Faults) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	in := Armed(plan)
	if _, fired := in.Inject("malloc", 1); fired {
		t.Error("callNumber2 = 0 must not arm anything")
	}
	if _, fired := in.Inject("read", 1); !fired {
		t.Error("primary fault lost")
	}
}

func TestPluginConvertBadSecondSlot(t *testing.T) {
	var p Plugin
	if _, _, err := p.Convert(dsl.Scenario{
		"function": "read", "callNumber": "1",
		"function2": "bogus", "callNumber2": "1",
	}); err == nil {
		t.Error("unknown secondary function accepted")
	}
}

func TestPluginConvertErrors(t *testing.T) {
	var p Plugin
	cases := []dsl.Scenario{
		{"callNumber": "1"}, // missing function
		{"function": "not_a_function", "callNumber": "1"},      // unknown function
		{"function": "read", "callNumber": "many"},             // bad number
		{"function": "read", "callNumber": "1", "retval": "x"}, // bad retval
		{"function": "read", "testID": "NaN"},                  // bad testID
	}
	for _, sc := range cases {
		if _, _, err := p.Convert(sc); err == nil {
			t.Errorf("Convert(%v) succeeded, want error", sc)
		}
	}
}

// TestConvertValuesMatchesConvert: the slice-based scenario path must
// agree with the map path on every scenario shape, including two-fault
// scenarios and profile-defaulted fields.
func TestConvertValuesMatchesConvert(t *testing.T) {
	var p Plugin
	cases := []struct {
		names []string
		vals  []string
	}{
		{[]string{"testID", "function", "callNumber"}, []string{"3", "read", "2"}},
		{[]string{"function", "errno", "retval", "callNumber"}, []string{"malloc", "ENOMEM", "0", "7"}},
		{[]string{"testID", "function", "callNumber", "function2", "callNumber2"},
			[]string{"1", "read", "2", "malloc", "5"}},
		{[]string{"function"}, []string{"write"}}, // callNumber defaults to 1
	}
	for _, tc := range cases {
		sc := dsl.Scenario{}
		for i, n := range tc.names {
			sc[n] = tc.vals[i]
		}
		mp, mplan, merr := p.Convert(sc)
		vp, vplan, verr := p.ConvertValues(tc.names, tc.vals)
		if (merr == nil) != (verr == nil) {
			t.Fatalf("%v: errors disagree: %v vs %v", tc.names, merr, verr)
		}
		if mp != vp {
			t.Errorf("%v: points disagree: %+v vs %+v", tc.names, mp, vp)
		}
		if mplan.String() != vplan.String() {
			t.Errorf("%v: plans disagree: %q vs %q", tc.names, mplan, vplan)
		}
	}
	if _, _, err := p.ConvertValues([]string{"callNumber"}, []string{"1"}); err == nil {
		t.Error("missing function accepted by ConvertValues")
	}
}
