package cluster

import (
	"fmt"
	"testing"

	"afex/internal/xrand"
)

// benchStacksN is the session-shaped corpus (duplicate-heavy, varied
// depth) at a chosen scale, plus novel probes that can never hit the
// exact-match hash: every probe carries one frame from a namespace no
// corpus stack uses.
func benchStacksN(n int) (stacks, probes [][]string) {
	rng := xrand.New(17)
	base := make([][]string, 600)
	for i := range base {
		depth := 2 + rng.Intn(10)
		st := make([]string, depth)
		for j := range st {
			st[j] = fmt.Sprintf("mod%d!fn%d", rng.Intn(12), rng.Intn(50))
		}
		base[i] = st
	}
	stacks = make([][]string, n)
	for i := range stacks {
		st := base[rng.Intn(len(base))]
		if rng.Intn(100) < 30 {
			st = append([]string(nil), st...)
			st[rng.Intn(len(st))] = fmt.Sprintf("mod%d!fn%d", rng.Intn(12), rng.Intn(50))
		}
		stacks[i] = st
	}
	probes = make([][]string, 512)
	for i := range probes {
		st := append([]string(nil), base[rng.Intn(len(base))]...)
		st[rng.Intn(len(st))] = fmt.Sprintf("probe!x%d", i)
		probes[i] = st
	}
	return stacks, probes
}

func benchStacks() [][]string {
	stacks, _ := benchStacksN(10000)
	return stacks
}

func BenchmarkNaiveSetAdd10k(b *testing.B) {
	stacks := benchStacks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := &naiveSet{threshold: 1}
		for id, st := range stacks {
			set.add(id, st)
		}
		b.ReportMetric(float64(len(set.clusters)), "clusters")
	}
}

func BenchmarkIndexedSetAdd10k(b *testing.B) {
	stacks := benchStacks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := NewSet(1)
		for id, st := range stacks {
			set.Add(id, st)
		}
		b.ReportMetric(float64(set.Len()), "clusters")
	}
}

// BenchmarkNaiveMaxSimilarity and BenchmarkIndexedMaxSimilarity compare
// the §7.4 feedback probe over identical corpora and probe sets: the
// seed's full Levenshtein scan over every remembered stack versus the
// screened, band-bounded indexed probe. Probes are novel (no exact-hash
// or memo shortcut), so the indexed side is measured on its worst case.
func BenchmarkNaiveMaxSimilarity(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		stacks, probes := benchStacksN(n)
		ref := &naiveSet{threshold: 1, all: stacks}
		b.Run(fmt.Sprintf("stacks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ref.maxSimilarity(probes[i%len(probes)])
			}
		})
	}
}

func BenchmarkIndexedMaxSimilarity(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		stacks, probes := benchStacksN(n)
		set := NewSet(1)
		for id, st := range stacks {
			set.Add(id, st)
		}
		b.Run(fmt.Sprintf("stacks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := probes[i%len(probes)]
				set.PeekSimilarity(p, StackKey(p))
			}
		})
	}
}
