// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) against the synthetic targets. Each experiment is a
// function returning a typed result with a String() rendering; cmd/benchtab
// prints them all and bench_test.go wraps each in a testing.B benchmark.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not the authors' testbed); the experiments preserve the paper's shape:
// who wins, by roughly what factor, and where the crossovers fall.
// EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"

	"afex/internal/core"
	"afex/internal/dsl"
	"afex/internal/explore"
	"afex/internal/faultspace"
	"afex/internal/inject"
	"afex/internal/libc"
	"afex/internal/prog"
	"afex/internal/targets"
	"afex/internal/trace"
)

// Opts tunes experiment execution without changing its meaning.
type Opts struct {
	// Seed is the base RNG seed; rep r uses Seed+r.
	Seed int64
	// Reps averages stochastic experiments over this many repetitions.
	// Default 3.
	Reps int
	// Scale multiplies iteration budgets (0 < Scale ≤ 1 shrinks runs for
	// quick checks). Default 1.
	Scale float64
}

func (o Opts) withDefaults() Opts {
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Opts) iters(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// spaceCache avoids re-profiling targets across experiments.
var spaceCache = map[string]*faultspace.Union{}

// profileCache caches suite profiles per target.
var profileCache = map[string]*trace.SuiteProfile{}

// profileFor returns (and caches) the target's suite profile.
func profileFor(p *prog.Program) *trace.SuiteProfile {
	if sp, ok := profileCache[p.Name]; ok {
		return sp
	}
	sp := trace.Profile(p)
	profileCache[p.Name] = sp
	return sp
}

// executePoint runs the single fault at point pt of the space against the
// target and returns the outcome, bypassing any explorer.
func executePoint(p *prog.Program, space *faultspace.Union, pt faultspace.Point) prog.Outcome {
	var plugin inject.Plugin
	sc := dsl.ScenarioFor(space, pt)
	ipt, plan, err := plugin.Convert(sc)
	if err != nil {
		return prog.Outcome{}
	}
	return prog.Run(p, ipt.TestID, plan)
}

// spaceFor returns the target's fault space per the §7 methodology.
func spaceFor(p *prog.Program, nFuncs, callLo, callHi int) *faultspace.Union {
	key := fmt.Sprintf("%s/%d/%d/%d", p.Name, nFuncs, callLo, callHi)
	if u, ok := spaceCache[key]; ok {
		return u
	}
	u := trace.Profile(p).BuildSpace(nFuncs, callLo, callHi)
	spaceCache[key] = u
	return u
}

// MySQLSpace returns Φ_MySQL (testID × 19 functions × callNumber 1..100).
func MySQLSpace() *faultspace.Union { return spaceFor(targets.Mysqld(), 19, 1, 100) }

// ApacheSpace returns Φ_Apache (testID × 19 functions × callNumber 1..10).
func ApacheSpace() *faultspace.Union { return spaceFor(targets.Httpd(), 19, 1, 10) }

// CoreutilsSpace returns Φ_coreutils (29 × 19 × {0,1,2} = 1,653).
func CoreutilsSpace() *faultspace.Union { return spaceFor(targets.Coreutils(), 19, 0, 2) }

// coreRun executes one fitness-guided session with a custom explorer
// configuration (used by the ablation experiments).
func coreRun(p *prog.Program, space *faultspace.Union, cfg explore.Config, iters int) (*core.ResultSet, error) {
	return core.Run(core.Config{
		Target:     p,
		Space:      space,
		Algorithm:  "fitness",
		Iterations: iters,
		Impact:     expImpact(),
		Explore:    cfg,
	})
}

// expImpact is the impact scoring used throughout the experiment
// harness. It follows the §6.4 recipe (points per new basic block, 10
// per failed test, 20 per crash) with the block term scaled to this
// substrate: a simulated test covers a few percent of the program's
// blocks, where a real test covers fractions of a percent, so a smaller
// per-block weight keeps the coverage and failure terms in the same
// proportion the paper's metric had.
func expImpact() core.ImpactConfig {
	return core.ImpactConfig{PerNewBlock: 0.25, Failed: 10, Crash: 20, Hang: 15}
}

// run executes one session with the given algorithm and budget.
func run(p *prog.Program, space *faultspace.Union, alg string, iters int, seed int64, feedback bool) *core.ResultSet {
	res, err := core.Run(core.Config{
		Target:     p,
		Space:      space,
		Algorithm:  alg,
		Iterations: iters,
		Feedback:   feedback,
		Impact:     expImpact(),
		Explore:    explore.Config{Seed: seed},
	})
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return res
}

// avg runs fn over reps seeds and averages the returned metrics
// element-wise.
func avg(o Opts, fn func(seed int64) []float64) []float64 {
	var sum []float64
	for r := 0; r < o.Reps; r++ {
		vals := fn(o.Seed + int64(r)*1000)
		if sum == nil {
			sum = make([]float64, len(vals))
		}
		for i, v := range vals {
			sum[i] += v
		}
	}
	for i := range sum {
		sum[i] /= float64(o.Reps)
	}
	return sum
}

// ---------------------------------------------------------------------------
// Fig. 1 — fault space map for ls.

// Fig1Result is the Fig. 1 fault-space map: which ⟨function, test⟩ cells
// of the ls utility's tests fail when the first call to the function is
// failed.
type Fig1Result struct {
	Functions []string
	TestIDs   []int
	TestNames []string
	// Fail[t][f] is true when failing the first call to Functions[f]
	// during TestIDs[t] makes the test fail.
	Fail [][]bool
}

// Fig1 builds the fault-space map of the ls tests in the coreutils
// target, mirroring Fig. 1: black cells (true) are test failures.
func Fig1(o Opts) Fig1Result {
	p := targets.Coreutils()
	sp := trace.Profile(p)
	funcs := sp.TopFunctions(19)
	var res Fig1Result
	res.Functions = funcs
	for t, tc := range p.TestSuite {
		if !strings.Contains(tc.Name, "/ls-") {
			continue
		}
		res.TestIDs = append(res.TestIDs, t)
		res.TestNames = append(res.TestNames, tc.Name)
	}
	res.Fail = make([][]bool, len(res.TestIDs))
	for i, t := range res.TestIDs {
		res.Fail[i] = make([]bool, len(funcs))
		for j, fn := range funcs {
			plan := planFor(fn, 1)
			out := prog.Run(p, t, plan)
			res.Fail[i][j] = out.Injected && out.Failed
		}
	}
	return res
}

// String renders the map with one row per test, '#' for failure, '.' for
// no failure — the ASCII analogue of Fig. 1.
func (r Fig1Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 1 — fault map of ls (rows: tests, cols: libc functions, '#' = test failure)\n")
	for j, fn := range r.Functions {
		fmt.Fprintf(&b, "  col %2d: %s\n", j, fn)
	}
	for i, row := range r.Fail {
		fmt.Fprintf(&b, "  %-24s ", r.TestNames[i])
		for _, fail := range row {
			if fail {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Density returns the fraction of cells that are failures.
func (r Fig1Result) Density() float64 {
	n, total := 0, 0
	for _, row := range r.Fail {
		for _, f := range row {
			total++
			if f {
				n++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// planFor builds the single-fault plan "fail the n-th call to fn" using
// the function's own fault profile.
func planFor(fn string, callNumber int) inject.Plan {
	prof := libc.Lookup(fn)
	if prof == nil {
		panic("experiments: unknown function " + fn)
	}
	return inject.Single(inject.Fault{Function: fn, CallNumber: callNumber, Err: prof.Errors[0]})
}
