package experiments

import (
	"fmt"
	"strings"

	"afex/internal/targets"
	"afex/internal/trace"
)

// ---------------------------------------------------------------------------
// Table 1 — MySQL: fitness-guided vs random vs the target's own suite.

// Table1Result compares fitness-guided search, random search, and the
// target's own test suite on the MySQL-like target, as Table 1 does
// (coverage %, failed tests, crashes).
type Table1Result struct {
	Iterations int
	// SuiteCoverage is the baseline suite's coverage with no injection;
	// the suite has zero failed tests and zero crashes by construction.
	SuiteCoverage float64
	FitnessCov    float64
	RandomCov     float64
	FitnessFailed float64
	RandomFailed  float64
	FitnessCrash  float64
	RandomCrash   float64
	// FitnessBugs and RandomBugs count distinct crash identities found —
	// the "new bugs" analysis of §7.1.
	FitnessBugs float64
	RandomBugs  float64
	// FoundPlanted records which of the two planted MySQL bugs the
	// fitness-guided search rediscovered in the last repetition.
	FoundPlanted []string
}

// Table1 runs the Table 1 comparison. The paper's 24-hour budget is
// stood in for by a fixed iteration budget (default 2000 tests).
func Table1(o Opts) Table1Result {
	o = o.withDefaults()
	p := targets.Mysqld()
	space := MySQLSpace()
	iters := o.iters(2000)
	res := Table1Result{Iterations: iters}
	res.SuiteCoverage = trace.Profile(p).Coverage

	var planted []string
	vals := avg(o, func(seed int64) []float64 {
		fit := run(p, space, "fitness", iters, seed, false)
		rnd := run(p, space, "random", iters, seed, false)
		planted = planted[:0]
		for _, bug := range []string{targets.BugMySQLDoubleUnlock, targets.BugMySQLErrmsg} {
			if fit.CrashIDs[bug] > 0 {
				planted = append(planted, bug)
			}
		}
		return []float64{
			fit.Coverage, rnd.Coverage,
			float64(fit.Failed), float64(rnd.Failed),
			float64(fit.Crashed), float64(rnd.Crashed),
			float64(len(fit.CrashIDs)), float64(len(rnd.CrashIDs)),
		}
	})
	res.FitnessCov, res.RandomCov = vals[0], vals[1]
	res.FitnessFailed, res.RandomFailed = vals[2], vals[3]
	res.FitnessCrash, res.RandomCrash = vals[4], vals[5]
	res.FitnessBugs, res.RandomBugs = vals[6], vals[7]
	res.FoundPlanted = planted
	return res
}

// String renders the Table 1 layout.
func (r Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — MySQL (%d iterations per algorithm)\n", r.Iterations)
	fmt.Fprintf(&b, "  %-16s %12s %14s %8s\n", "", "test suite", "fitness-guided", "random")
	fmt.Fprintf(&b, "  %-16s %11.2f%% %13.2f%% %7.2f%%\n", "Coverage", 100*r.SuiteCoverage, 100*r.FitnessCov, 100*r.RandomCov)
	fmt.Fprintf(&b, "  %-16s %12d %14.0f %8.0f\n", "# failed tests", 0, r.FitnessFailed, r.RandomFailed)
	fmt.Fprintf(&b, "  %-16s %12d %14.0f %8.0f\n", "# crashes", 0, r.FitnessCrash, r.RandomCrash)
	fmt.Fprintf(&b, "  %-16s %12d %14.0f %8.0f\n", "# distinct bugs", 0, r.FitnessBugs, r.RandomBugs)
	if len(r.FoundPlanted) > 0 {
		fmt.Fprintf(&b, "  planted bugs rediscovered by fitness-guided: %s\n", strings.Join(r.FoundPlanted, ", "))
	}
	fmt.Fprintf(&b, "  paper shape: fitness ≈3× random on failed tests, ≈9× on crashes; coverage within ~1%%\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2 — Apache httpd, 1000 test iterations.

// Table2Result compares fitness vs random on the Apache-like target for a
// fixed 1000-test budget (failed tests and crashes), as Table 2 does.
type Table2Result struct {
	Iterations    int
	FitnessFailed float64
	RandomFailed  float64
	FitnessCrash  float64
	RandomCrash   float64
	// StrdupHits counts fitness-guided manifestations of the planted
	// Fig. 7 strdup bug (the paper reports 27 for fitness, 0 for random).
	StrdupHitsFitness float64
	StrdupHitsRandom  float64
}

// Table2 runs the Table 2 comparison.
func Table2(o Opts) Table2Result {
	o = o.withDefaults()
	p := targets.Httpd()
	space := ApacheSpace()
	iters := o.iters(1000)
	vals := avg(o, func(seed int64) []float64 {
		fit := run(p, space, "fitness", iters, seed, false)
		rnd := run(p, space, "random", iters, seed, false)
		return []float64{
			float64(fit.Failed), float64(rnd.Failed),
			float64(fit.Crashed), float64(rnd.Crashed),
			float64(fit.CrashIDs[targets.BugApacheStrdup]),
			float64(rnd.CrashIDs[targets.BugApacheStrdup]),
		}
	})
	return Table2Result{
		Iterations:    iters,
		FitnessFailed: vals[0], RandomFailed: vals[1],
		FitnessCrash: vals[2], RandomCrash: vals[3],
		StrdupHitsFitness: vals[4], StrdupHitsRandom: vals[5],
	}
}

// String renders the Table 2 layout.
func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — Apache httpd (%d iterations)\n", r.Iterations)
	fmt.Fprintf(&b, "  %-16s %14s %8s\n", "", "fitness-guided", "random")
	fmt.Fprintf(&b, "  %-16s %14.0f %8.0f\n", "# failed tests", r.FitnessFailed, r.RandomFailed)
	fmt.Fprintf(&b, "  %-16s %14.0f %8.0f\n", "# crashes", r.FitnessCrash, r.RandomCrash)
	fmt.Fprintf(&b, "  %-16s %14.0f %8.0f\n", "strdup-bug hits", r.StrdupHitsFitness, r.StrdupHitsRandom)
	fmt.Fprintf(&b, "  paper shape: fitness ≈3× random on failed tests, ≈12× on crashes; strdup bug found only by fitness\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3 — coreutils: 250 samples vs exhaustive 1,653.

// Table3Result compares fitness vs random at a fixed 250-test budget on
// the coreutils target, with the exhaustive baseline, as Table 3 does.
type Table3Result struct {
	Iterations     int
	FitnessCov     float64
	RandomCov      float64
	ExhaustiveCov  float64
	FitnessFailed  float64
	RandomFailed   float64
	ExhaustFailed  int
	ExhaustTests   int
	SuiteCoverage  float64
	FitnessRecCov  float64
	ExhaustRecCov  float64
	FractionOfSpce float64
}

// Table3 runs the Table 3 comparison plus the §7.2 recovery-coverage
// analysis ("fitness-guided exploration with 250 iterations covers 95% of
// the recovery code while sampling only 15% of the fault space").
func Table3(o Opts) Table3Result {
	o = o.withDefaults()
	p := targets.Coreutils()
	space := CoreutilsSpace()
	iters := o.iters(250)
	res := Table3Result{Iterations: iters}
	res.SuiteCoverage = trace.Profile(p).Coverage

	ex := run(p, space, "exhaustive", 0, o.Seed, false)
	res.ExhaustFailed = ex.Failed
	res.ExhaustTests = ex.Executed
	res.ExhaustiveCov = ex.Coverage
	res.ExhaustRecCov = ex.RecoveryCoverage

	vals := avg(o, func(seed int64) []float64 {
		fit := run(p, space, "fitness", iters, seed, false)
		rnd := run(p, space, "random", iters, seed, false)
		return []float64{
			fit.Coverage, rnd.Coverage,
			float64(fit.Failed), float64(rnd.Failed),
			fit.RecoveryCoverage,
		}
	})
	res.FitnessCov, res.RandomCov = vals[0], vals[1]
	res.FitnessFailed, res.RandomFailed = vals[2], vals[3]
	res.FitnessRecCov = vals[4]
	res.FractionOfSpce = float64(iters) / float64(space.Size())
	return res
}

// String renders the Table 3 layout.
func (r Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — coreutils (%d samples vs exhaustive %d)\n", r.Iterations, r.ExhaustTests)
	fmt.Fprintf(&b, "  %-16s %14s %8s %10s\n", "", "fitness-guided", "random", "exhaustive")
	fmt.Fprintf(&b, "  %-16s %13.2f%% %7.2f%% %9.2f%%\n", "Code coverage", 100*r.FitnessCov, 100*r.RandomCov, 100*r.ExhaustiveCov)
	fmt.Fprintf(&b, "  %-16s %14d %8d %10d\n", "# tests executed", r.Iterations, r.Iterations, r.ExhaustTests)
	fmt.Fprintf(&b, "  %-16s %14.0f %8.0f %10d\n", "# failed tests", r.FitnessFailed, r.RandomFailed, r.ExhaustFailed)
	fmt.Fprintf(&b, "  suite-only coverage %.2f%%; fitness recovery-code coverage %.1f%% of exhaustive %.1f%%, sampling %.0f%% of the space\n",
		100*r.SuiteCoverage, 100*r.FitnessRecCov, 100*r.ExhaustRecCov, 100*r.FractionOfSpce)
	fmt.Fprintf(&b, "  paper shape: fitness ≈2.3× random on failed tests; coverage within fractions of a point; exhaustive complete but 6.6× slower\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 8 — failures vs iteration curve.

// Fig8Result is the cumulative failed-test count per iteration for
// fitness-guided and random exploration (Fig. 8).
type Fig8Result struct {
	Iterations int
	// FitnessCurve[i] and RandomCurve[i] are cumulative failure-inducing
	// injections after i+1 iterations (averaged over reps).
	FitnessCurve []float64
	RandomCurve  []float64
}

// Fig8 generates the Fig. 8 curves (500 iterations on coreutils).
func Fig8(o Opts) Fig8Result {
	o = o.withDefaults()
	p := targets.Coreutils()
	space := CoreutilsSpace()
	iters := o.iters(500)
	res := Fig8Result{
		Iterations:   iters,
		FitnessCurve: make([]float64, iters),
		RandomCurve:  make([]float64, iters),
	}
	for rep := 0; rep < o.Reps; rep++ {
		seed := o.Seed + int64(rep)*1000
		fit := run(p, space, "fitness", iters, seed, false)
		rnd := run(p, space, "random", iters, seed, false)
		accumulate(res.FitnessCurve, fit)
		accumulate(res.RandomCurve, rnd)
	}
	for i := range res.FitnessCurve {
		res.FitnessCurve[i] /= float64(o.Reps)
		res.RandomCurve[i] /= float64(o.Reps)
	}
	return res
}

func accumulate(curve []float64, rs interface{ FailedAt(i int) bool }) {
	cum := 0.0
	for i := 0; i < len(curve); i++ {
		if rs.FailedAt(i) {
			cum++
		}
		curve[i] += cum
	}
}

// String renders the curves as a compact series (every 50 iterations)
// plus an ASCII sparkline-style table.
func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — cumulative test failures vs iteration (coreutils, %d iterations)\n", r.Iterations)
	fmt.Fprintf(&b, "  %-10s %10s %10s %8s\n", "iteration", "fitness", "random", "ratio")
	step := r.Iterations / 10
	if step < 1 {
		step = 1
	}
	for i := step - 1; i < r.Iterations; i += step {
		f, rd := r.FitnessCurve[i], r.RandomCurve[i]
		ratio := 0.0
		if rd > 0 {
			ratio = f / rd
		}
		fmt.Fprintf(&b, "  %-10d %10.1f %10.1f %7.2fx\n", i+1, f, rd, ratio)
	}
	fmt.Fprintf(&b, "  paper shape: gap widens with iterations as the search infers the space's structure\n")
	return b.String()
}
