package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"afex"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// checkGolden compares got against testdata/name, regenerating with
// `go test -update` — the same pinning discipline as benchtab and
// faultmap.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestTargetsGolden: the listing is a pure function of the registries,
// so its bytes are pinned; registering a new target or backend is an
// intentional change regenerated with -update.
func TestTargetsGolden(t *testing.T) {
	var out bytes.Buffer
	if err := cmdTargets(nil, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "targets.golden", out.Bytes())
}

func TestTargetsJSONGolden(t *testing.T) {
	var out bytes.Buffer
	if err := cmdTargets([]string{"--json"}, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "targets_json.golden", out.Bytes())

	// The JSON must decode back to the live registries — machine
	// readability is the point of the flag.
	var got struct {
		Targets  []string `json:"targets"`
		Backends []string `json:"backends"`
	}
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("--json output is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(got.Targets, afex.TargetNames()) {
		t.Errorf("targets = %v, want %v", got.Targets, afex.TargetNames())
	}
	if !reflect.DeepEqual(got.Backends, afex.Backends()) {
		t.Errorf("backends = %v, want %v", got.Backends, afex.Backends())
	}
}
