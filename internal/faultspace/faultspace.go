// Package faultspace models the fault hyperspaces of AFEX §2.
//
// A fault space Φ is spanned by N totally-ordered axes X1..XN; a fault φ is
// a vector of attribute indices <α1..αN> into those axes. The space may
// have holes (invalid parameter combinations) and may be a union of
// subspaces (the ";"-separated subspaces of the description language).
//
// Axes are behind the Axis interface (see axis.go): categorical axes
// materialize their values, numeric range axes are lazy, so a space's
// memory cost is O(axes), not O(points per axis). Sizes are computed in
// saturating int64 arithmetic so even astronomically large products are
// reported sanely, and Union.Shard partitions a space into disjoint
// regions for concurrent exploration (see shard.go).
//
// The package provides the geometric machinery the exploration algorithm
// and its evaluation rely on: Manhattan distance δ, D-vicinities, and the
// relative linear density metric ρ that characterizes fault-space
// structure.
package faultspace

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Fault is a point in a fault space: a vector of attribute indices, one
// per axis. Fault values are small and copied freely.
type Fault []int

// Clone returns an independent copy of φ (the clone() of Algorithm 1
// line 10).
func (f Fault) Clone() Fault {
	c := make(Fault, len(f))
	copy(c, f)
	return c
}

// Equal reports whether two faults have identical attribute vectors.
func (f Fault) Equal(g Fault) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if f[i] != g[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string identity for use in History sets and
// deduplication maps. It is on the per-candidate hot path of every
// explorer, so it formats into a stack buffer instead of fmt.
func (f Fault) Key() string {
	var buf [64]byte
	return string(f.appendKey(buf[:0]))
}

func (f Fault) appendKey(b []byte) []byte {
	for i, v := range f {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return b
}

// Space is a single fault hyperspace: the Cartesian product of its axes,
// minus any holes.
type Space struct {
	// Name labels the subspace (the optional "subtype" identifier of the
	// description language).
	Name string
	// Axes span the space. All faults in the space index into these.
	Axes []Axis
	// Hole, if non-nil, reports parameter combinations that are invalid
	// (e.g. close returning 1). Holes are skipped by enumeration and
	// rejected by Contains.
	Hole func(Fault) bool
}

// New constructs a Space from axes. The zero-value Hole (nil) means the
// space has no holes.
func New(name string, axes ...Axis) *Space {
	return &Space{Name: name, Axes: axes}
}

// Dims returns the number of axes.
func (s *Space) Dims() int { return len(s.Axes) }

// Size returns the number of points in the full Cartesian product,
// ignoring holes, in saturating int64 arithmetic: products beyond
// math.MaxInt64 report math.MaxInt64 instead of silently wrapping. The
// paper quotes sizes this way (e.g. |Φ_MySQL| = 2,179,300).
func (s *Space) Size() int64 {
	if len(s.Axes) == 0 {
		return 0
	}
	n := int64(1)
	for _, a := range s.Axes {
		n = satMul(n, int64(a.Len()))
	}
	return n
}

// satMul multiplies non-negative a and b, saturating at math.MaxInt64.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// Contains reports whether f is a valid point of the space: correct
// dimensionality, every index in range, and not a hole.
func (s *Space) Contains(f Fault) bool {
	if len(f) != len(s.Axes) {
		return false
	}
	for i, v := range f {
		if v < 0 || v >= s.Axes[i].Len() {
			return false
		}
	}
	if s.Hole != nil && s.Hole(f) {
		return false
	}
	return true
}

// Attr returns the attribute value of f on axis i (the human-readable
// injector parameter).
func (s *Space) Attr(f Fault, i int) string { return s.Axes[i].Value(f[i]) }

// Describe renders f as "name=value" pairs, the form node managers receive.
func (s *Space) Describe(f Fault) string {
	parts := make([]string, len(f))
	for i := range f {
		parts[i] = s.Axes[i].Name() + "=" + s.Attr(f, i)
	}
	return strings.Join(parts, " ")
}

// Random returns a uniformly random valid fault, retrying past holes.
// intn must behave like rand.Intn. It panics if the space is empty or if
// 1000 consecutive draws hit holes (a degenerate Hole predicate).
func (s *Space) Random(intn func(int) int) Fault {
	if s.Size() == 0 {
		panic("faultspace: Random on empty space")
	}
	for tries := 0; tries < 1000; tries++ {
		f := make(Fault, len(s.Axes))
		for i, a := range s.Axes {
			f[i] = intn(a.Len())
		}
		if s.Hole == nil || !s.Hole(f) {
			return f
		}
	}
	panic("faultspace: Hole predicate rejects (nearly) all faults")
}

// Enumerate calls visit for every valid fault in the space, in
// lexicographic order of attribute indices. visit returning false stops
// enumeration early. This is the exhaustive-search iterator.
func (s *Space) Enumerate(visit func(Fault) bool) {
	if s.Size() == 0 {
		return
	}
	f := make(Fault, len(s.Axes))
	for {
		if s.Hole == nil || !s.Hole(f) {
			if !visit(f.Clone()) {
				return
			}
		}
		// Odometer increment.
		i := len(f) - 1
		for i >= 0 {
			f[i]++
			if f[i] < s.Axes[i].Len() {
				break
			}
			f[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// Distance returns the Manhattan (city-block) distance δ(f, g): the
// smallest number of attribute-index increments/decrements turning f into
// g (§2). Both faults must have the space's dimensionality.
func Distance(f, g Fault) int {
	d := 0
	for i := range f {
		if f[i] > g[i] {
			d += f[i] - g[i]
		} else {
			d += g[i] - f[i]
		}
	}
	return d
}

// Vicinity calls visit for every valid fault within Manhattan distance D
// of center (inclusive), center itself included. Enumeration is bounded by
// axis lengths and skips holes.
func (s *Space) Vicinity(center Fault, d int, visit func(Fault) bool) {
	f := center.Clone()
	var rec func(axis, budget int) bool
	rec = func(axis, budget int) bool {
		if axis == len(s.Axes) {
			if s.Hole == nil || !s.Hole(f) {
				return visit(f.Clone())
			}
			return true
		}
		lo := center[axis] - budget
		if lo < 0 {
			lo = 0
		}
		hi := center[axis] + budget
		if hi > s.Axes[axis].Len()-1 {
			hi = s.Axes[axis].Len() - 1
		}
		for v := lo; v <= hi; v++ {
			f[axis] = v
			used := v - center[axis]
			if used < 0 {
				used = -used
			}
			if !rec(axis+1, budget-used) {
				return false
			}
		}
		f[axis] = center[axis]
		return true
	}
	rec(0, d)
}

// LinearDensity computes the relative linear density ρ_k(φ) of §2 along
// axis k, restricted to the D-vicinity of φ: the average impact of faults
// that differ from φ only on axis k (within the vicinity), scaled by the
// average impact of all faults in the vicinity. impact must be defined for
// every valid fault it is handed.
//
// ρ > 1 means walking along axis k from φ encounters more high-impact
// faults than walking in a random direction.
func (s *Space) LinearDensity(center Fault, k, d int, impact func(Fault) float64) float64 {
	var lineSum float64
	var lineN int
	f := center.Clone()
	lo := center[k] - d
	if lo < 0 {
		lo = 0
	}
	hi := center[k] + d
	if hi > s.Axes[k].Len()-1 {
		hi = s.Axes[k].Len() - 1
	}
	for v := lo; v <= hi; v++ {
		f[k] = v
		if s.Hole != nil && s.Hole(f) {
			continue
		}
		lineSum += impact(f)
		lineN++
	}
	var allSum float64
	var allN int
	s.Vicinity(center, d, func(g Fault) bool {
		allSum += impact(g)
		allN++
		return true
	})
	if lineN == 0 || allN == 0 || allSum == 0 {
		return 0
	}
	return (lineSum / float64(lineN)) / (allSum / float64(allN))
}

// ShuffleAxis returns a copy of the space with the values of axis k
// permuted by perm (perm[i] gives the new position of value i). This is
// the structure-destruction operation of the paper's §7.3 experiment:
// shuffling a dimension's values eliminates whatever structure that
// dimension had while preserving the space's size and contents.
//
// The shuffled axis is materialized (a permutation has no lazy form);
// the permutation argument is already O(len), so this adds no asymptotic
// cost. Unshuffled axes are shared with the original. Holes are remapped
// so the same logical faults remain invalid.
func (s *Space) ShuffleAxis(k int, perm []int) *Space {
	if len(perm) != s.Axes[k].Len() {
		panic("faultspace: ShuffleAxis permutation has wrong length")
	}
	out := &Space{Name: s.Name, Axes: make([]Axis, len(s.Axes))}
	copy(out.Axes, s.Axes)
	orig := axisValues(s.Axes[k])
	vals := make([]string, len(orig))
	for oldIdx, newIdx := range perm {
		vals[newIdx] = orig[oldIdx]
	}
	out.Axes[k] = SetAxis(s.Axes[k].Name(), vals...)
	if hole := s.Hole; hole != nil {
		// Map a shuffled fault back to original indices before asking the
		// original predicate.
		inv := make([]int, len(perm))
		for oldIdx, newIdx := range perm {
			inv[newIdx] = oldIdx
		}
		out.Hole = func(f Fault) bool {
			g := f.Clone()
			g[k] = inv[f[k]]
			return hole(g)
		}
	}
	return out
}

// Union is an ordered collection of subspaces, as produced by a
// description with multiple ";"-separated spaces. A point in a Union is
// addressed by (subspace index, Fault).
type Union struct {
	Spaces []*Space
}

// NewUnion builds a Union over the given subspaces.
func NewUnion(spaces ...*Space) *Union { return &Union{Spaces: spaces} }

// Size returns the total number of points across subspaces, saturating
// at math.MaxInt64.
func (u *Union) Size() int64 {
	n := int64(0)
	for _, s := range u.Spaces {
		sz := s.Size()
		if n > math.MaxInt64-sz {
			return math.MaxInt64
		}
		n += sz
	}
	return n
}

// Signature returns a stable structural digest of the union, used by the
// persistent exploration store to verify that a journal or snapshot
// written against one space is only ever resumed against a compatible
// one: same subspaces in the same order, same axis names and lengths,
// same values. Journal entries address faults by attribute *index*, so
// even a reordering of one axis's values would silently reinterpret
// every journaled coordinate — the signature therefore hashes axis
// values, not just endpoints.
//
// Lazy numeric range axes (IntAxis) are fully determined by their
// bounds and hash exactly in O(1). Every other axis hashes its complete
// value list — for materialized axes that is the memory already paid at
// construction. The one exception: a third-party lazy Axis
// implementation longer than 2^16 values falls back to endpoint +
// interior probes to keep the signature cheap; none exists in this
// module.
//
// The signature deliberately ignores Hole predicates (functions do not
// serialize); a resumed session with a different hole set still explores
// only valid points, because holes are re-checked at generation time.
func Signature(u *Union) string {
	var b strings.Builder
	for i, s := range u.Spaces {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(s.Name)
		b.WriteByte('(')
		for k, a := range s.Axes {
			if k > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s[%d:%x]", a.Name(), a.Len(), axisDigest(a))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// axisDigest is an FNV-1a hash over the axis's (index, value) pairs:
// exact O(1) bounds hash for lazy integer ranges, exhaustive for every
// other axis (probe-sampled only for third-party lazy axes past 2^16
// values, where exhaustion would defeat their laziness).
func axisDigest(a Axis) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(idx int, v string) {
		h ^= uint64(idx)
		h *= prime64
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= prime64
		}
		h ^= 0xff // value terminator, so ("ab","c") != ("a","bc")
		h *= prime64
	}
	if ia, ok := a.(*intAxis); ok {
		mix(-1, "int-range")
		mix(ia.lo, strconv.Itoa(ia.lo))
		mix(ia.hi, strconv.Itoa(ia.hi))
		return h
	}
	n := a.Len()
	if n <= 1<<16 {
		for i := 0; i < n; i++ {
			mix(i, a.Value(i))
		}
		return h
	}
	for _, i := range []int{0, 1, n / 3, n / 2, 2 * n / 3, n - 2, n - 1} {
		mix(i, a.Value(i))
	}
	return h
}

// Point identifies a fault within a Union.
type Point struct {
	Sub   int
	Fault Fault
}

// Key returns a unique string identity for the point.
func (p Point) Key() string {
	var buf [72]byte
	b := strconv.AppendInt(buf[:0], int64(p.Sub), 10)
	b = append(b, ':')
	return string(p.Fault.appendKey(b))
}

// Random draws a subspace with probability proportional to its size, then
// a uniform fault within it, so the union is sampled uniformly overall.
func (u *Union) Random(intn func(int) int) Point {
	total := u.Size()
	if total == 0 {
		panic("faultspace: Random on empty union")
	}
	x := int64(intn(capInt(total)))
	for i, s := range u.Spaces {
		if x < s.Size() {
			return Point{Sub: i, Fault: s.Random(intn)}
		}
		x -= s.Size()
	}
	panic("unreachable")
}

// capInt clamps an int64 to the platform int range (a no-op on 64-bit
// hosts; saturated sizes stay drawable on 32-bit ones).
func capInt(n int64) int {
	if n > int64(math.MaxInt) {
		return math.MaxInt
	}
	return int(n)
}

// Enumerate visits every valid point of every subspace in order.
func (u *Union) Enumerate(visit func(Point) bool) {
	for i, s := range u.Spaces {
		stop := false
		s.Enumerate(func(f Fault) bool {
			if !visit(Point{Sub: i, Fault: f}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// RebasePoint translates a point of u onto the coordinates of parent,
// matching attribute values axis by axis (indices may differ between the
// two unions; values identify the fault). It returns ok == false when a
// value of p does not exist on the corresponding parent axis. Shard
// produces unions whose every point rebases onto the parent this way.
func (u *Union) RebasePoint(parent *Union, p Point) (Point, bool) {
	if p.Sub < 0 || p.Sub >= len(u.Spaces) || p.Sub >= len(parent.Spaces) {
		return Point{}, false
	}
	sp, pp := u.Spaces[p.Sub], parent.Spaces[p.Sub]
	if len(p.Fault) != len(sp.Axes) || len(sp.Axes) != len(pp.Axes) {
		return Point{}, false
	}
	f := make(Fault, len(p.Fault))
	for i, v := range p.Fault {
		if v < 0 || v >= sp.Axes[i].Len() {
			return Point{}, false
		}
		idx := pp.Axes[i].Index(sp.Axes[i].Value(v))
		if idx < 0 {
			return Point{}, false
		}
		f[i] = idx
	}
	return Point{Sub: p.Sub, Fault: f}, true
}
