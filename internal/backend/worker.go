package backend

// The warm-worker pool: the process backend's answer to the fork/exec
// tax. Instead of spawning one subprocess per leased scenario, the
// supervisor spawns Config.Procs persistent fixture processes in worker
// mode (AFEX_WORKER_FD set, no AFEX_PLAN) and streams re-arm messages —
// one serialized PlanWire per scenario — down each worker's arm pipe.
// The shim resets call counters and coverage between scenarios
// (shim.Serve / rearm) and answers each with a "done" event carrying
// the scenario's exit code, so a clean scenario costs one pipe write
// and one pipe read instead of a process lifetime.
//
// Lifecycle:
//
//   - A worker is recycled (arm pipe closed → orderly exit 0 → respawn
//     on next use) after Config.TestsPerProc scenarios, bounding how
//     much fixture state can leak across scenarios.
//   - A scenario that crashes its worker takes only that worker down:
//     the report pipe's EOF is the death signal, the in-flight scenario
//     folds exactly once — from the worker's ProcessState, exactly as a
//     one-shot crash would — and the slot respawns lazily.
//   - A scenario that exceeds the timeout gets its worker's process
//     group killed and folds to Hung, again exactly once.
//   - Construction probes the fixture: a binary that never announces
//     worker readiness (an old one-shot fixture that ignores
//     AFEX_WORKER_FD) falls back to the cold per-scenario runner, so
//     warm workers are the default without breaking existing targets.

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"afex/internal/inject"
	"afex/internal/prog"
	"afex/shim"
)

// DefaultTestsPerProc is how many scenarios one warm worker serves
// before recycling when Config.TestsPerProc is zero.
const DefaultTestsPerProc = 256

// readyTimeout caps the construction-time probe: a fixture that has not
// announced worker readiness this long after spawn is treated as a
// one-shot binary and the pool falls back to cold execution.
const readyTimeout = 2 * time.Second

// worker is one persistent fixture process of the pool.
type worker struct {
	cmd *exec.Cmd
	arm *os.File // supervisor's write end of the arm pipe (child fd 4)
	// events carries the worker's report stream; the reader goroutine
	// closes it at report-pipe EOF, which is how Run observes death.
	events chan shim.Event
	wait   chan error // buffered; receives cmd.Wait exactly once
	seq    int        // last arm sequence number issued
	served int        // scenarios completed since spawn
}

// workerRunner is the warm pool. It reuses the cold runner's spec,
// timeout and validation; cold remains the spawn-failure fallback path
// only in the sense that both speak the same fold vocabulary.
type workerRunner struct {
	spec         *CommandSpec
	timeout      time.Duration
	testsPerProc int
	baseEnv      []string
	// slots is the pool: cap = Procs, each holding a live worker or nil
	// (spawn lazily on first use). Receiving a slot bounds concurrency
	// exactly like the cold runner's semaphore.
	slots chan *worker
	// recycled counts workers retired after serving their quota
	// (Recycler capability; shutdown retires are not recycles).
	recycled atomic.Int64

	mu     sync.Mutex
	closed bool
}

// Recycles implements Recycler: quota-driven worker recycles so far.
func (p *workerRunner) Recycles() int64 { return p.recycled.Load() }

// Parallelism implements Parallel: the pool width (Config.Procs).
func (p *workerRunner) Parallelism() int { return cap(p.slots) }

// newWorkerRunner probes the fixture for worker mode and builds the
// pool, or returns nil when the fixture does not speak it (the caller
// falls back to the cold runner). cold supplies the already-validated
// spec and timeout.
func newWorkerRunner(cfg Config, cold *processRunner) Runner {
	tpp := cfg.TestsPerProc
	if tpp == 0 {
		tpp = DefaultTestsPerProc
	}
	p := &workerRunner{
		spec:         cold.spec,
		timeout:      cold.timeout,
		testsPerProc: tpp,
		baseEnv:      append(os.Environ(), shim.ReportFDEnv+"=3", shim.WorkerFDEnv+"=4"),
		slots:        make(chan *worker, cap(cold.sem)),
	}
	probe, err := p.spawn(0)
	if err != nil {
		return nil
	}
	p.slots <- probe
	for i := 1; i < cap(p.slots); i++ {
		p.slots <- nil
	}
	return p
}

// spawn launches one worker-mode fixture process and waits for its
// readiness announcement. The testID only feeds the argv template —
// worker-mode fixtures take the authoritative test id from each arm
// message.
func (p *workerRunner) spawn(testID int) (*worker, error) {
	argv := p.spec.ArgvFor(testID)
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	isolateProcessGroup(cmd)

	reportR, reportW, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	armR, armW, err := os.Pipe()
	if err != nil {
		reportR.Close()
		reportW.Close()
		return nil, err
	}
	// ExtraFiles[0] is child fd 3 (report, child writes), ExtraFiles[1]
	// is child fd 4 (arm, child reads); the env names both so the
	// convention can move.
	cmd.ExtraFiles = []*os.File{reportW, armR}
	cmd.Env = p.baseEnv

	if err := cmd.Start(); err != nil {
		reportR.Close()
		reportW.Close()
		armR.Close()
		armW.Close()
		return nil, err
	}
	reportW.Close() // child's ends now
	armR.Close()

	w := &worker{
		cmd:    cmd,
		arm:    armW,
		events: make(chan shim.Event, 64),
		wait:   make(chan error, 1),
	}
	go func() {
		defer close(w.events)
		defer reportR.Close()
		sc := bufio.NewScanner(reportR)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			var ev shim.Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				w.events <- ev
			}
		}
	}()
	go func() { w.wait <- cmd.Wait() }()

	// Handshake: a worker-mode shim emits "ready" before anything else.
	// A one-shot fixture instead runs its test fault-free and exits
	// (events closes without a ready), selecting the cold fallback.
	timer := time.NewTimer(readyTimeout)
	defer timer.Stop()
	select {
	case ev, ok := <-w.events:
		if ok && ev.Kind == shim.EventReady {
			return w, nil
		}
	case <-timer.C:
	}
	p.reap(w)
	return nil, errNotWorkerMode
}

var errNotWorkerMode = errors.New("fixture does not speak worker mode")

// reap force-kills a worker and waits out its exit; used for handshake
// failures, timeouts, and pool shutdown.
func (p *workerRunner) reap(w *worker) {
	if w == nil {
		return
	}
	w.arm.Close()
	killTree(w.cmd)
	<-w.wait
	for range w.events {
	}
}

// retire recycles a worker that served its quota: closing the arm pipe
// is the orderly shutdown signal (shim.Serve returns and exits 0), with
// a kill backstop should the fixture ignore it.
func (p *workerRunner) retire(w *worker) {
	if w == nil {
		return
	}
	w.arm.Close()
	timer := time.NewTimer(p.timeout)
	defer timer.Stop()
	select {
	case <-w.wait:
	case <-timer.C:
		killTree(w.cmd)
		<-w.wait
	}
	for range w.events {
	}
}

// Run executes one scenario on a warm worker, spawning or respawning
// the slot's worker as needed. Each call folds exactly one outcome,
// even when the scenario kills its worker mid-flight.
func (p *workerRunner) Run(testID int, plan inject.Plan) (prog.Outcome, Exec) {
	w := <-p.slots
	defer func() { p.slots <- w }()
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		p.reap(w)
		w = nil
		return prog.Outcome{Failed: true}, Exec{Backend: Process, ExitStatus: "runner-closed"}
	}

	// Two attempts: an arm-pipe write can fail only when the worker died
	// between scenarios (its outcome already folded), so retrying once
	// on a fresh worker never double-reports a scenario.
	for attempt := 0; attempt < 2; attempt++ {
		if w == nil {
			fresh, err := p.spawn(testID)
			if err != nil {
				return prog.Outcome{Failed: true}, Exec{Backend: Process, ExitStatus: "spawn:" + err.Error()}
			}
			w = fresh
		}
		out, ex, armed := p.runScenario(&w, testID, plan)
		if armed {
			return out, ex
		}
	}
	return prog.Outcome{Failed: true}, Exec{Backend: Process, ExitStatus: "worker-lost"}
}

// runScenario arms one plan on *wp and collects its outcome. armed
// reports whether the scenario reached the worker: false means the arm
// write failed against an already-dead worker and the caller may retry
// on a fresh one. *wp is nilled whenever the worker is gone (death,
// timeout, recycling), so the slot respawns lazily.
func (p *workerRunner) runScenario(wp **worker, testID int, plan inject.Plan) (prog.Outcome, Exec, bool) {
	w := *wp
	w.seq++
	seq := w.seq
	msg, err := json.Marshal(wirePlan(testID, seq, plan))
	if err != nil {
		panic("backend: plan wire encoding cannot fail: " + err.Error())
	}
	start := time.Now()
	if _, err := w.arm.Write(append(msg, '\n')); err != nil {
		// The worker died between scenarios; nothing was armed.
		p.reap(w)
		*wp = nil
		return prog.Outcome{}, Exec{}, false
	}

	var events []shim.Event
	timer := time.NewTimer(p.timeout)
	defer timer.Stop()
	for {
		select {
		case ev, ok := <-w.events:
			if !ok {
				// Report-pipe EOF mid-scenario: the scenario crashed its
				// worker. Fold the death as this scenario's outcome —
				// exactly once — and leave the slot empty.
				<-w.wait
				duration := time.Since(start)
				out, crashID := foldEvents(events)
				ex := Exec{Backend: Process, Duration: duration}
				if ps := w.cmd.ProcessState; ps != nil && ps.ExitCode() >= 0 {
					// Orderly exit without a done event (fixture bypassed
					// Serve, e.g. os.Exit inside the body): still one
					// scenario, one outcome.
					foldExit(&out, &ex, ps.ExitCode())
				} else {
					foldDeath(&out, &ex, w.cmd.ProcessState, crashID)
				}
				*wp = nil
				return out, ex, true
			}
			if ev.Kind == shim.EventDone && ev.Seq == seq {
				duration := time.Since(start)
				out, _ := foldEvents(events)
				ex := Exec{Backend: Process, Duration: duration}
				foldExit(&out, &ex, ev.Exit)
				w.served++
				if w.served >= p.testsPerProc {
					p.retire(w)
					p.recycled.Add(1)
					*wp = nil
				}
				return out, ex, true
			}
			events = append(events, ev)
		case <-timer.C:
			// Per-scenario wall clock exhausted: the scenario hung its
			// worker. Kill the whole group and fold Hung.
			killTree(w.cmd)
			<-w.wait
			for range w.events {
			}
			out, ex := foldReport(events, w.cmd.ProcessState, true, time.Since(start))
			*wp = nil
			return out, ex, true
		}
	}
}

// Close retires every worker and refuses further runs. Draining the
// slots waits out in-flight scenarios, exactly like the cold runner's
// semaphore drain.
func (p *workerRunner) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	workers := make([]*worker, 0, cap(p.slots))
	for i := 0; i < cap(p.slots); i++ {
		workers = append(workers, <-p.slots)
	}
	for _, w := range workers {
		p.retire(w)
	}
	for i := 0; i < cap(p.slots); i++ {
		p.slots <- nil
	}
	return nil
}
