package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"afex"
)

// statsStateDir runs a deterministic model session (fixed seed, model
// backend: zero durations) into a fresh state dir, so `afex stats`
// output is a pure function of the session parameters and the golden
// bytes are pinnable.
func statsStateDir(t *testing.T, format string) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "state")
	err := cmdExplore([]string{
		"--target", "mysqld",
		"--iterations", "40",
		"--seed", "5",
		"--state-dir", dir,
		"--journal-format", format,
	})
	if err := noFailures(err); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCmdStatsGolden pins the human-readable and --json stats output
// for both journal formats; the binary directory is compacted first so
// the golden covers the archive/live split and the segment count.
func TestCmdStatsGolden(t *testing.T) {
	for _, format := range []string{afex.JournalJSONL, afex.JournalBinary} {
		t.Run(format, func(t *testing.T) {
			dir := statsStateDir(t, format)
			if format == afex.JournalBinary {
				moved, err := afex.CompactState(dir)
				if err != nil {
					t.Fatal(err)
				}
				if moved != 40 {
					t.Fatalf("compaction archived %d entries, want 40", moved)
				}
			}

			var out bytes.Buffer
			if err := cmdStats([]string{dir}, &out); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("stats_%s.golden", format), out.Bytes())

			out.Reset()
			if err := cmdStats([]string{dir, "--json"}, &out); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("stats_%s_json.golden", format), out.Bytes())

			// The JSON must decode back to the reader's view of the
			// directory — machine readability is the point of the flag.
			var got afex.StateStats
			if err := json.Unmarshal(out.Bytes(), &got); err != nil {
				t.Fatalf("--json output is not valid JSON: %v", err)
			}
			want, err := afex.ReadStateStats(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got != *want {
				t.Errorf("decoded stats = %+v, want %+v", got, *want)
			}
		})
	}
}

// TestCmdStatsArgs: the directory is required, flags may precede or
// follow it, and a missing directory reports the reader's error.
func TestCmdStatsArgs(t *testing.T) {
	var out bytes.Buffer
	if err := cmdStats(nil, &out); err == nil {
		t.Error("stats accepted no arguments")
	}
	if err := cmdStats([]string{"--json"}, &out); err == nil {
		t.Error("stats accepted --json without a directory")
	}
	if err := cmdStats([]string{filepath.Join(t.TempDir(), "nope")}, &out); err == nil {
		t.Error("stats accepted a directory with no session state")
	}
	dir := statsStateDir(t, afex.JournalJSONL)
	for _, args := range [][]string{{dir, "--json"}, {"--json", dir}} {
		out.Reset()
		if err := cmdStats(args, &out); err != nil {
			t.Errorf("stats %v: %v", args, err)
		} else if !json.Valid(out.Bytes()) {
			t.Errorf("stats %v emitted invalid JSON", args)
		}
	}
}
