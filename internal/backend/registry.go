package backend

// The backend registry: execution backends are constructed by name
// through one extensible factory table, mirroring the exploration
// strategy registry — every layer that selects a backend
// (core.Config.Backend, the afex CLI, rpcnode node managers) shares a
// single list of valid names and a single error message when a name is
// unknown.

import (
	"fmt"
	"sort"
	"strings"
)

// Factory constructs a runner from a validated configuration.
type Factory func(cfg Config) (Runner, error)

// registry maps backend names to factories; populated at init time and
// extended only through Register during a caller's own init.
var registry = map[string]Factory{}

// Register adds a backend under name. Registering a duplicate name
// panics: the registry is assembled at init time, where a collision is
// a programming error, not a runtime condition.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("backend: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: %q registered twice", name))
	}
	registry[name] = f
}

// Names returns the sorted names of every registered backend — the
// valid values of core.Config.Backend and the CLI's --backend flag.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New constructs a runner by backend name; "" selects Model. Unknown
// names return an error listing every valid choice, so a typo'd
// --backend fails session construction instead of surfacing as a nil
// executor downstream.
func New(name string, cfg Config) (Runner, error) {
	if name == "" {
		name = Model
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("backend: unknown execution backend %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	r, err := f(cfg)
	if err != nil {
		return nil, fmt.Errorf("backend: %s: %w", name, err)
	}
	return r, nil
}

func init() {
	Register(Model, newModel)
	Register(Process, newProcess)
}
